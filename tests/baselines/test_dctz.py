"""Tests for the DCTZ-style baseline (DPZ minus the PCA stage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import mean_relative_error, psnr
from repro.baselines.dctz import (
    DCTZCompressor,
    dctz_compress,
    dctz_decompress,
)
from repro.errors import ConfigError, DataShapeError, FormatError


class TestRoundtrip:
    def test_shape_dtype_restored(self, smooth_2d):
        recon = dctz_decompress(dctz_compress(smooth_2d))
        assert recon.shape == smooth_2d.shape
        assert recon.dtype == smooth_2d.dtype

    def test_1d_and_3d(self, rough_1d, tiny_3d):
        r1 = dctz_decompress(dctz_compress(rough_1d, p=1e-4,
                                           index_bytes=2))
        assert r1.shape == rough_1d.shape
        r3 = dctz_decompress(dctz_compress(tiny_3d))
        assert r3.shape == tiny_3d.shape

    def test_non_multiple_block_length(self, rng):
        data = rng.normal(size=199).astype(np.float32)
        recon = dctz_decompress(dctz_compress(data, block_size=64))
        assert recon.shape == (199,)

    def test_float64(self, rng):
        data = np.cumsum(rng.normal(size=512))
        recon = dctz_decompress(dctz_compress(data, p=1e-5, index_bytes=2))
        assert recon.dtype == np.float64

    def test_constant_data(self):
        data = np.full(256, 2.5, dtype=np.float32)
        recon = dctz_decompress(dctz_compress(data))
        np.testing.assert_allclose(recon, data, atol=1e-4)


class TestQuality:
    def test_theta_tracks_p(self, smooth_2d):
        recon = dctz_decompress(dctz_compress(smooth_2d, p=1e-3))
        assert mean_relative_error(smooth_2d, recon) < 3e-3

    def test_strict_scheme_more_accurate(self, smooth_2d):
        loose = dctz_decompress(dctz_compress(smooth_2d, p=1e-3))
        strict = dctz_decompress(dctz_compress(smooth_2d, p=1e-5,
                                               index_bytes=2))
        assert psnr(smooth_2d, strict) > psnr(smooth_2d, loose)

    def test_smooth_data_compresses(self, smooth_2d):
        blob = dctz_compress(smooth_2d)
        assert smooth_2d.nbytes / len(blob) > 2.0

    def test_dpz_beats_dctz_on_collinear_blocks(self):
        """The whole point of DPZ's stage 2: on data whose blocks are
        collinear, adding k-PCA beats DCT-quantize alone at similar
        quality."""
        import repro
        from repro.datasets.registry import get_dataset

        data = get_dataset("FLDSC", "small")
        dctz_blob = dctz_compress(data, p=1e-3)
        dctz_psnr = psnr(data, dctz_decompress(dctz_blob))
        dpz_blob = repro.dpz_compress(data, scheme="l", tve_nines=5)
        dpz_psnr = psnr(data, repro.dpz_decompress(dpz_blob))
        assert data.nbytes / len(dpz_blob) > data.nbytes / len(dctz_blob)
        assert dpz_psnr > dctz_psnr - 10.0


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            DCTZCompressor(p=0)
        with pytest.raises(ConfigError):
            DCTZCompressor(index_bytes=3)
        with pytest.raises(ConfigError):
            DCTZCompressor(block_size=2)

    def test_empty_rejected(self):
        with pytest.raises(DataShapeError):
            dctz_compress(np.zeros(0, dtype=np.float32))

    def test_corrupt_container(self, smooth_2d):
        blob = dctz_compress(smooth_2d)
        with pytest.raises(FormatError):
            dctz_decompress(b"XXXX" + blob[4:])
        with pytest.raises(FormatError):
            dctz_decompress(blob[: len(blob) // 2])
