"""Tests for lattice quantization and Lorenzo prediction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.lorenzo import (
    lattice_dequantize,
    lattice_quantize,
    lorenzo_forward,
    lorenzo_inverse,
)
from repro.errors import ConfigError


class TestLattice:
    def test_error_bound_holds(self, rng):
        x = rng.normal(size=1000) * 100
        eps = 1e-3
        q = lattice_quantize(x, eps)
        err = np.abs(lattice_dequantize(q, eps) - x)
        assert err.max() <= eps + 1e-12

    def test_idempotent_on_lattice_points(self):
        eps = 0.5
        x = lattice_dequantize(np.array([-3, 0, 7]), eps)
        np.testing.assert_array_equal(lattice_quantize(x, eps),
                                      [-3, 0, 7])

    def test_nonpositive_eps_rejected(self):
        with pytest.raises(ConfigError):
            lattice_quantize(np.zeros(3), 0.0)
        with pytest.raises(ConfigError):
            lattice_dequantize(np.zeros(3, dtype=np.int64), -1.0)

    def test_overflow_guard(self):
        with pytest.raises(ConfigError):
            lattice_quantize(np.array([1e30]), 1e-10)

    @given(st.floats(1e-6, 1e3), st.integers(0, 2 ** 32))
    def test_bound_property(self, eps, seed):
        x = np.random.default_rng(seed).normal(size=64) * 10
        err = np.abs(lattice_dequantize(lattice_quantize(x, eps), eps) - x)
        assert err.max() <= eps * (1 + 1e-9)


class TestLorenzo:
    @pytest.mark.parametrize("shape", [(100,), (17, 23), (6, 7, 8),
                                       (3, 4, 5, 6)])
    def test_roundtrip_any_dim(self, shape, rng):
        lattice = rng.integers(-1000, 1000, size=shape)
        out = lorenzo_inverse(lorenzo_forward(lattice))
        np.testing.assert_array_equal(out, lattice)

    def test_constant_input_gives_sparse_residuals(self):
        lattice = np.full((20, 20), 7, dtype=np.int64)
        res = lorenzo_forward(lattice)
        assert res[0, 0] == 7
        assert np.count_nonzero(res) == 1

    def test_linear_ramp_residuals_small(self):
        lattice = np.arange(100, dtype=np.int64).reshape(10, 10)
        res = lorenzo_forward(lattice)
        # Interior of a bilinear-predictable field: residual 0.
        assert np.count_nonzero(res[1:, 1:]) == 0

    def test_2d_residual_is_corner_formula(self, rng):
        """r[i,j] = q[i,j] - q[i-1,j] - q[i,j-1] + q[i-1,j-1] (interior)."""
        q = rng.integers(-50, 50, size=(8, 9))
        res = lorenzo_forward(q)
        expected = (q[1:, 1:] - q[:-1, 1:] - q[1:, :-1] + q[:-1, :-1])
        np.testing.assert_array_equal(res[1:, 1:], expected)

    def test_smooth_data_residual_entropy_lower(self, rng):
        smooth = np.cumsum(rng.integers(-2, 3, size=2000))
        res = lorenzo_forward(smooth)
        assert np.abs(res[1:]).max() <= 2
