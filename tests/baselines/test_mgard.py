"""Tests for the MGARD-family multigrid compressor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import max_abs_error
from repro.baselines.mgard import (
    MGARDCompressor,
    _ladder,
    _odd_mask,
    _upsample,
    mgard_compress,
    mgard_decompress,
)
from repro.errors import ConfigError, DataShapeError, FormatError


class TestPrimitives:
    def test_upsample_exact_at_coarse_points(self, rng):
        coarse = rng.normal(size=(9, 7))
        up = _upsample(coarse, (17, 13))
        np.testing.assert_array_equal(up[::2, ::2], coarse)

    def test_upsample_midpoints_are_averages(self):
        coarse = np.array([0.0, 2.0, 4.0])
        up = _upsample(coarse, (5,))
        np.testing.assert_allclose(up, [0, 1, 2, 3, 4])

    def test_upsample_even_length_tail(self):
        coarse = np.array([0.0, 2.0, 4.0])
        up = _upsample(coarse, (6,))
        np.testing.assert_allclose(up, [0, 1, 2, 3, 4, 4])

    def test_odd_mask_complements_coarse_lattice(self):
        mask = _odd_mask((6, 7))
        assert not mask[::2, ::2].any()
        assert mask.sum() == 6 * 7 - 3 * 4

    def test_ladder(self):
        assert _ladder((16, 9), 2) == [(16, 9), (8, 5), (4, 3)]


class TestErrorBound:
    @pytest.mark.parametrize("gamma", [0.0, 0.5, 1.0])
    def test_bound_holds_2d(self, gamma, smooth_2d):
        eps = 1e-3
        blob = mgard_compress(smooth_2d, eps=eps, gamma=gamma)
        recon = mgard_decompress(blob)
        assert max_abs_error(smooth_2d, recon) <= eps * (1 + 1e-6)

    def test_bound_holds_1d(self, rough_1d):
        eps = 1e-2
        recon = mgard_decompress(mgard_compress(rough_1d, eps=eps))
        assert max_abs_error(rough_1d, recon) <= eps * (1 + 1e-6)

    def test_bound_holds_3d(self, tiny_3d):
        eps = 1e-4
        recon = mgard_decompress(mgard_compress(tiny_3d, eps=eps))
        assert max_abs_error(tiny_3d, recon) <= eps * (1 + 1e-6)

    def test_relative_bound(self, smooth_2d):
        rel = 1e-4
        recon = mgard_decompress(mgard_compress(smooth_2d, rel_eps=rel))
        bound = rel * float(smooth_2d.max() - smooth_2d.min())
        assert max_abs_error(smooth_2d, recon) <= bound * (1 + 1e-6)

    @given(st.integers(0, 2 ** 32), st.sampled_from([1e-2, 1e-3]),
           st.sampled_from([0.0, 0.5]))
    @settings(max_examples=20)
    def test_bound_property(self, seed, eps, gamma):
        rng = np.random.default_rng(seed)
        data = np.cumsum(rng.normal(size=(20, 24)), axis=1).astype(
            np.float32)
        recon = mgard_decompress(mgard_compress(data, eps=eps,
                                                gamma=gamma))
        assert max_abs_error(data, recon) <= eps * (1 + 1e-5)


class TestQuality:
    def test_smooth_data_compresses_well(self, smooth_2d):
        blob = mgard_compress(smooth_2d, rel_eps=1e-3)
        assert smooth_2d.nbytes / len(blob) > 3.0

    def test_tighter_bound_larger_output(self, smooth_2d):
        loose = len(mgard_compress(smooth_2d, eps=1e-2))
        tight = len(mgard_compress(smooth_2d, eps=1e-5))
        assert tight > loose

    def test_shape_dtype_restored(self, tiny_3d):
        recon = mgard_decompress(mgard_compress(tiny_3d, eps=1e-3))
        assert recon.shape == tiny_3d.shape
        assert recon.dtype == tiny_3d.dtype

    def test_odd_shapes(self, rng):
        data = rng.normal(size=(17, 23)).astype(np.float32)
        recon = mgard_decompress(mgard_compress(data, eps=1e-3))
        assert recon.shape == data.shape
        assert max_abs_error(data, recon) <= 1e-3 * (1 + 1e-6)

    def test_levels_clipped_on_small_input(self, rng):
        data = rng.normal(size=(8, 8)).astype(np.float32)
        recon = mgard_decompress(mgard_compress(data, eps=1e-3, levels=6))
        assert max_abs_error(data, recon) <= 1e-3 * (1 + 1e-6)

    def test_gamma_tightens_coarse_levels(self, smooth_2d):
        """Higher gamma -> more bits on coarse levels -> lower PSNR at
        the same eps is NOT expected; instead the *size* grows."""
        plain = len(mgard_compress(smooth_2d, eps=1e-3, gamma=0.0))
        tight = len(mgard_compress(smooth_2d, eps=1e-3, gamma=1.0))
        assert tight >= plain * 0.9  # coarse grids are small: mild effect

    def test_float64(self, rng):
        data = np.cumsum(rng.normal(size=(32, 32)), axis=0)
        recon = mgard_decompress(mgard_compress(data, eps=1e-8))
        assert recon.dtype == np.float64
        assert max_abs_error(data, recon) <= 1e-8


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            MGARDCompressor()
        with pytest.raises(ConfigError):
            MGARDCompressor(eps=1e-3, rel_eps=1e-3)
        with pytest.raises(ConfigError):
            MGARDCompressor(eps=0.0)
        with pytest.raises(ConfigError):
            MGARDCompressor(eps=1e-3, levels=0)
        with pytest.raises(ConfigError):
            MGARDCompressor(eps=1e-3, gamma=-1)

    def test_bad_shapes(self, rng):
        with pytest.raises(DataShapeError):
            mgard_compress(np.zeros(0, dtype=np.float32), eps=1e-3)
        with pytest.raises(DataShapeError):
            mgard_compress(rng.normal(size=(2, 50)).astype(np.float32),
                           eps=1e-3)
        with pytest.raises(DataShapeError):
            mgard_compress(np.zeros((4,) * 5, dtype=np.float32), eps=1e-3)

    def test_corrupt_container(self, smooth_2d):
        blob = mgard_compress(smooth_2d, eps=1e-3)
        with pytest.raises(FormatError):
            mgard_decompress(b"XXXX" + blob[4:])
