"""Tests for the per-block regression predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.regression import design_matrix, fit_blocks, \
    predict_blocks
from repro.errors import DataShapeError


def test_design_matrix_shape():
    X = design_matrix((4, 4))
    assert X.shape == (16, 3)  # [1, i, j]
    assert np.all(X[:, 0] == 1.0)


def test_design_matrix_3d():
    X = design_matrix((2, 3, 4))
    assert X.shape == (24, 4)


def test_design_matrix_empty_rejected():
    with pytest.raises(DataShapeError):
        design_matrix(())


def test_exact_fit_on_planes(rng):
    """Blocks that ARE hyperplanes fit with ~zero residual."""
    gy, gx = np.meshgrid(np.linspace(-1, 1, 8), np.linspace(-1, 1, 8),
                         indexing="ij")
    blocks = np.stack([
        2.0 + 3.0 * gy - 1.0 * gx,
        -5.0 + 0.5 * gy + 4.0 * gx,
    ])
    coef = fit_blocks(blocks)
    pred = predict_blocks(coef, (8, 8))
    assert np.max(np.abs(pred - blocks)) < 1e-3  # float32 coef rounding


def test_fit_reduces_residual_vs_mean(rng):
    blocks = rng.normal(size=(10, 8, 8)) + \
        np.linspace(0, 5, 8)[None, :, None]
    coef = fit_blocks(blocks)
    pred = predict_blocks(coef, (8, 8))
    res = blocks - pred
    res_mean = blocks - blocks.mean(axis=(1, 2), keepdims=True)
    assert (res ** 2).sum() < (res_mean ** 2).sum()


def test_coefficients_are_float32(rng):
    coef = fit_blocks(rng.normal(size=(3, 4, 4)))
    assert coef.dtype == np.float32


def test_prediction_uses_rounded_coefficients(rng):
    """Encoder/decoder symmetry: predicting from the stored (rounded)
    coefficients must be reproducible bit-for-bit."""
    blocks = rng.normal(size=(5, 8, 8))
    coef = fit_blocks(blocks)
    p1 = predict_blocks(coef, (8, 8))
    p2 = predict_blocks(coef.copy(), (8, 8))
    np.testing.assert_array_equal(p1, p2)


def test_1d_blocks(rng):
    blocks = rng.normal(size=(4, 16)) + np.linspace(0, 3, 16)
    coef = fit_blocks(blocks)
    assert coef.shape == (4, 2)
    pred = predict_blocks(coef, (16,))
    assert pred.shape == (4, 16)


def test_bad_block_array_rejected(rng):
    with pytest.raises(DataShapeError):
        fit_blocks(rng.normal(size=8))
