"""Tests for the SZ-style error-bounded compressor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.metrics import max_abs_error
from repro.baselines.sz import MODES, SZCompressor, sz_compress, sz_decompress
from repro.errors import ConfigError, DataShapeError, FormatError


class TestErrorBound:
    @pytest.mark.parametrize("mode", MODES)
    def test_absolute_bound_2d(self, mode, smooth_2d):
        eps = 1e-3
        blob = sz_compress(smooth_2d, eps=eps, mode=mode)
        recon = sz_decompress(blob)
        assert max_abs_error(smooth_2d, recon) <= eps * (1 + 1e-6)

    def test_absolute_bound_1d(self, rough_1d):
        eps = 1e-2
        recon = sz_decompress(sz_compress(rough_1d, eps=eps))
        assert max_abs_error(rough_1d, recon) <= eps * (1 + 1e-6)

    def test_absolute_bound_3d(self, tiny_3d):
        eps = 1e-4
        recon = sz_decompress(sz_compress(tiny_3d, eps=eps))
        assert max_abs_error(tiny_3d, recon) <= eps * (1 + 1e-6)

    def test_relative_bound(self, smooth_2d):
        rel = 1e-4
        blob = sz_compress(smooth_2d, rel_eps=rel)
        recon = sz_decompress(blob)
        rng_ = float(smooth_2d.max() - smooth_2d.min())
        assert max_abs_error(smooth_2d, recon) <= rel * rng_ * (1 + 1e-6)

    def test_tighter_bound_bigger_output(self, smooth_2d):
        loose = len(sz_compress(smooth_2d, eps=1e-2))
        tight = len(sz_compress(smooth_2d, eps=1e-5))
        assert tight > loose


class TestRoundtripProperties:
    def test_shape_and_dtype_restored(self, smooth_2d):
        recon = sz_decompress(sz_compress(smooth_2d, eps=1e-3))
        assert recon.shape == smooth_2d.shape
        assert recon.dtype == smooth_2d.dtype

    def test_float64_supported(self, rng):
        data = rng.normal(size=(30, 40))
        recon = sz_decompress(sz_compress(data, eps=1e-6))
        assert recon.dtype == np.float64
        assert max_abs_error(data, recon) <= 1e-6 * (1 + 1e-9)

    def test_other_dtypes_coerced(self):
        data = np.arange(100, dtype=np.int32)
        recon = sz_decompress(sz_compress(data, eps=0.5))
        assert recon.dtype == np.float64

    def test_constant_data(self):
        data = np.full((20, 20), 3.25, dtype=np.float32)
        blob = sz_compress(data, rel_eps=1e-3)
        recon = sz_decompress(blob)
        assert max_abs_error(data, recon) <= 1e-3
        assert len(blob) < data.nbytes // 4

    def test_4d_lorenzo(self, rng):
        data = rng.normal(size=(4, 5, 6, 7)).astype(np.float32)
        recon = sz_decompress(sz_compress(data, eps=1e-3, mode="lorenzo"))
        assert max_abs_error(data, recon) <= 1e-3 * (1 + 1e-6)


class TestCompressionQuality:
    def test_smooth_data_compresses_well(self, smooth_2d):
        blob = sz_compress(smooth_2d, rel_eps=1e-3)
        assert smooth_2d.nbytes / len(blob) > 4.0

    def test_auto_beats_or_matches_lorenzo_on_planar_data(self, rng):
        """Piecewise-planar data is regression's home turf."""
        gy, gx = np.meshgrid(np.linspace(0, 9, 64), np.linspace(0, 7, 64),
                             indexing="ij")
        data = (3 * gy - 2 * gx + 0.02 * rng.normal(size=(64, 64)))
        data = data.astype(np.float32)
        auto = len(sz_compress(data, eps=1e-3, mode="auto"))
        lor = len(sz_compress(data, eps=1e-3, mode="lorenzo"))
        assert auto <= lor * 1.1

    def test_white_noise_barely_compresses(self, rough_1d):
        blob = sz_compress(rough_1d, rel_eps=1e-5)
        assert rough_1d.nbytes / len(blob) < 3.0


class TestValidation:
    def test_requires_exactly_one_bound(self):
        with pytest.raises(ConfigError):
            SZCompressor()
        with pytest.raises(ConfigError):
            SZCompressor(eps=1e-3, rel_eps=1e-3)

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ConfigError):
            SZCompressor(eps=0.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            SZCompressor(eps=1e-3, mode="magic")

    def test_tiny_block_size_rejected(self):
        with pytest.raises(ConfigError):
            SZCompressor(eps=1e-3, block_size=1)

    def test_empty_array_rejected(self):
        with pytest.raises(DataShapeError):
            sz_compress(np.zeros(0, dtype=np.float32), eps=1e-3)

    def test_5d_rejected(self):
        with pytest.raises(DataShapeError):
            sz_compress(np.zeros((2,) * 5, dtype=np.float32), eps=1e-3)

    def test_corrupt_container_rejected(self, smooth_2d):
        blob = sz_compress(smooth_2d, eps=1e-3)
        with pytest.raises(FormatError):
            sz_decompress(b"XXXX" + blob[4:])


@given(st.integers(0, 2 ** 32),
       st.sampled_from([1e-2, 1e-3, 1e-4]),
       st.sampled_from(MODES))
def test_error_bound_property(seed, eps, mode):
    """The hard SZ contract on arbitrary random fields."""
    rng = np.random.default_rng(seed)
    data = (np.cumsum(rng.normal(size=300)).reshape(15, 20)
            .astype(np.float32))
    recon = sz_decompress(sz_compress(data, eps=eps, mode=mode))
    assert max_abs_error(data, recon) <= eps * (1 + 1e-5)
