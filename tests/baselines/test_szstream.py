"""Tests for SZ residual entropy coding."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.szstream import decode_residuals, encode_residuals


def test_roundtrip_small_residuals(rng):
    res = rng.integers(-10, 11, size=5000)
    blob = encode_residuals(res)
    out = decode_residuals(blob, res.size)
    np.testing.assert_array_equal(out, res)


def test_roundtrip_with_escapes(rng):
    res = rng.integers(-5, 6, size=2000).astype(np.int64)
    res[::100] = 10 ** 9  # far outside the 64k alphabet
    res[::151] = -(10 ** 12)
    blob = encode_residuals(res)
    np.testing.assert_array_equal(decode_residuals(blob, res.size), res)


def test_peaked_residuals_compress_well(rng):
    res = rng.choice([-1, 0, 0, 0, 0, 0, 0, 1], size=50_000).astype(np.int64)
    blob = encode_residuals(res)
    # ~1 bit/symbol achievable; allow generous margin over the 8 bytes raw.
    assert len(blob) < res.size // 2


def test_small_alphabet(rng):
    res = rng.integers(-2, 3, size=300)
    blob = encode_residuals(res, alphabet=16)
    np.testing.assert_array_equal(decode_residuals(blob, 300, alphabet=16),
                                  res)


def test_all_escapes():
    res = np.full(50, 10 ** 10, dtype=np.int64)
    blob = encode_residuals(res, alphabet=4)
    np.testing.assert_array_equal(decode_residuals(blob, 50, alphabet=4),
                                  res)


def test_empty_stream():
    res = np.zeros(0, dtype=np.int64)
    blob = encode_residuals(res)
    assert decode_residuals(blob, 0).size == 0


@given(st.lists(st.integers(-(2 ** 40), 2 ** 40), max_size=300))
def test_roundtrip_property(values):
    res = np.asarray(values, dtype=np.int64)
    blob = encode_residuals(res, alphabet=256)
    np.testing.assert_array_equal(
        decode_residuals(blob, res.size, alphabet=256), res
    )
