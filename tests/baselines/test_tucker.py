"""Tests for the TTHRESH-family Tucker-truncation compressor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import psnr
from repro.baselines.tucker import (
    TuckerCompressor,
    hosvd,
    mode_product,
    tucker_compress,
    tucker_decompress,
)
from repro.errors import ConfigError, DataShapeError, FormatError


class TestHOSVD:
    def test_exact_reconstruction(self, rng):
        x = rng.normal(size=(6, 7, 8))
        core, factors, _ = hosvd(x)
        out = core
        for mode, u in enumerate(factors):
            out = mode_product(out, u, mode)
        np.testing.assert_allclose(out, x, atol=1e-10)

    def test_factor_orthonormality(self, rng):
        _, factors, _ = hosvd(rng.normal(size=(5, 6, 7)))
        for u in factors:
            np.testing.assert_allclose(u.T @ u, np.eye(u.shape[1]),
                                       atol=1e-10)

    def test_core_energy_equals_tensor_energy(self, rng):
        x = rng.normal(size=(4, 5, 6))
        core, _, _ = hosvd(x)
        assert np.isclose(np.sum(core ** 2), np.sum(x ** 2))

    def test_singular_values_sorted(self, rng):
        _, _, svals = hosvd(rng.normal(size=(8, 8, 8)))
        for s in svals:
            assert np.all(np.diff(s) <= 1e-12)

    def test_mode_product_shapes(self, rng):
        x = rng.normal(size=(3, 4, 5))
        m = rng.normal(size=(2, 4))
        assert mode_product(x, m, 1).shape == (3, 2, 5)


class TestRoundtrip:
    def test_3d_roundtrip(self, tiny_3d):
        blob = tucker_compress(tiny_3d, target=0.99999)
        recon = tucker_decompress(blob)
        assert recon.shape == tiny_3d.shape
        assert recon.dtype == tiny_3d.dtype
        assert psnr(tiny_3d, recon) > 40.0

    def test_2d_roundtrip(self, smooth_2d):
        blob = tucker_compress(smooth_2d, target=0.9999)
        recon = tucker_decompress(blob)
        assert psnr(smooth_2d, recon) > 35.0

    def test_low_rank_volume_compresses_hugely(self, rng):
        u = rng.normal(size=(32, 2))
        v = rng.normal(size=(32, 2))
        w = rng.normal(size=(32, 2))
        x = np.einsum("ir,jr,kr->ijk", u, v, w).astype(np.float32)
        blob = tucker_compress(x, target=0.999999)
        assert x.nbytes / len(blob) > 20.0
        assert psnr(x, tucker_decompress(blob)) > 60.0

    def test_tighter_target_better_quality(self, tiny_3d):
        p_loose = psnr(tiny_3d,
                       tucker_decompress(tucker_compress(tiny_3d, 0.95)))
        p_tight = psnr(tiny_3d,
                       tucker_decompress(tucker_compress(tiny_3d,
                                                         0.9999999)))
        assert p_tight > p_loose

    def test_float64(self, rng):
        x = rng.normal(size=(8, 9, 10))
        recon = tucker_decompress(tucker_compress(x))
        assert recon.dtype == np.float64


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            TuckerCompressor(target=0.0)
        with pytest.raises(ConfigError):
            TuckerCompressor(p=-1)
        with pytest.raises(ConfigError):
            TuckerCompressor(index_bytes=4)

    def test_1d_rejected(self, rng):
        with pytest.raises(DataShapeError):
            tucker_compress(rng.normal(size=100).astype(np.float32))

    def test_corrupt_container(self, tiny_3d):
        blob = tucker_compress(tiny_3d)
        with pytest.raises(FormatError):
            tucker_decompress(b"XXXX" + blob[4:])
