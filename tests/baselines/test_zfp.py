"""Tests for the ZFP-style transform coder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import max_abs_error, psnr
from repro.baselines.zfp import (
    EBITS,
    ZFPCompressor,
    zfp_compress,
    zfp_decompress,
)
from repro.errors import ConfigError, DataShapeError


class TestFixedRate:
    def test_container_size_tracks_rate(self, smooth_2d):
        blob8 = zfp_compress(smooth_2d, rate=8)
        blob16 = zfp_compress(smooth_2d, rate=16)
        payload8 = len(blob8)
        payload16 = len(blob16)
        # 16 bits/value is ~2x the 8 bits/value payload (+ small header).
        assert 1.7 < payload16 / payload8 < 2.3

    def test_rate_yields_expected_cr(self, smooth_2d):
        blob = zfp_compress(smooth_2d, rate=8)
        cr = smooth_2d.nbytes / len(blob)
        assert 3.0 < cr <= 4.2  # 32/8 = 4x minus header overhead

    def test_higher_rate_higher_psnr(self, smooth_2d):
        p = [psnr(smooth_2d, zfp_decompress(zfp_compress(smooth_2d, rate=r)))
             for r in (2, 4, 8, 16)]
        assert p == sorted(p)

    def test_quality_at_high_rate(self, smooth_2d):
        recon = zfp_decompress(zfp_compress(smooth_2d, rate=16))
        assert psnr(smooth_2d, recon) > 60.0

    def test_1d_and_3d(self, rough_1d, tiny_3d):
        r1 = zfp_decompress(zfp_compress(rough_1d, rate=8))
        assert r1.shape == rough_1d.shape
        r3 = zfp_decompress(zfp_compress(tiny_3d, rate=4))
        assert psnr(tiny_3d, r3) > 30.0

    def test_rate_too_small_for_header_rejected(self, rough_1d):
        with pytest.raises(ConfigError):
            zfp_compress(rough_1d, rate=1.0)  # 1-D: needs > 13/4 bits


class TestFixedPrecision:
    def test_more_precision_more_accurate(self, smooth_2d):
        p = [psnr(smooth_2d,
                  zfp_decompress(zfp_compress(smooth_2d, precision=pr)))
             for pr in (8, 16, 32)]
        assert p == sorted(p)

    def test_full_precision_near_lossless(self, smooth_2d):
        recon = zfp_decompress(zfp_compress(smooth_2d, precision=50))
        assert psnr(smooth_2d, recon) > 100.0


class TestFixedAccuracy:
    @pytest.mark.parametrize("tol", [1e-1, 1e-2, 1e-3, 1e-4])
    def test_tolerance_respected(self, smooth_2d, tol):
        recon = zfp_decompress(zfp_compress(smooth_2d, tolerance=tol))
        assert max_abs_error(smooth_2d, recon) <= tol

    def test_tolerance_respected_3d(self, tiny_3d):
        tol = 1e-3
        recon = zfp_decompress(zfp_compress(tiny_3d, tolerance=tol))
        assert max_abs_error(tiny_3d, recon) <= tol

    def test_looser_tolerance_smaller_output(self, smooth_2d):
        tight = len(zfp_compress(smooth_2d, tolerance=1e-5))
        loose = len(zfp_compress(smooth_2d, tolerance=1e-1))
        assert loose < tight

    def test_zero_blocks_cheap(self):
        data = np.zeros((32, 32), dtype=np.float32)
        blob = zfp_compress(data, tolerance=1e-3)
        assert len(blob) < 200
        np.testing.assert_array_equal(zfp_decompress(blob), data)


class TestGeneral:
    def test_mode_property(self):
        assert ZFPCompressor(rate=8).mode == "rate"
        assert ZFPCompressor(precision=10).mode == "precision"
        assert ZFPCompressor(tolerance=1e-3).mode == "accuracy"

    def test_exactly_one_mode_required(self):
        with pytest.raises(ConfigError):
            ZFPCompressor()
        with pytest.raises(ConfigError):
            ZFPCompressor(rate=8, precision=10)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            ZFPCompressor(rate=-1)
        with pytest.raises(ConfigError):
            ZFPCompressor(precision=0)
        with pytest.raises(ConfigError):
            ZFPCompressor(tolerance=0.0)

    def test_non_multiple_of_four_shapes(self, rng):
        data = rng.normal(size=(13, 19)).astype(np.float32)
        recon = zfp_decompress(zfp_compress(data, rate=12))
        assert recon.shape == data.shape
        assert psnr(data, recon) > 35.0

    def test_float64_roundtrip(self, rng):
        data = rng.normal(size=(16, 16))
        recon = zfp_decompress(zfp_compress(data, tolerance=1e-6))
        assert recon.dtype == np.float64
        assert max_abs_error(data, recon) <= 1e-6

    def test_4d_rejected(self):
        with pytest.raises(DataShapeError):
            zfp_compress(np.zeros((4, 4, 4, 4), dtype=np.float32), rate=8)

    def test_empty_rejected(self):
        with pytest.raises(DataShapeError):
            zfp_compress(np.zeros(0, dtype=np.float32), rate=8)

    def test_large_dynamic_range(self):
        """Block-floating-point must handle per-block scale differences."""
        data = np.ones((8, 8), dtype=np.float32)
        data[:4, :4] *= 1e6
        data[4:, 4:] *= 1e-6
        recon = zfp_decompress(zfp_compress(data, precision=40))
        assert np.allclose(recon, data, rtol=1e-6)

    def test_ebits_covers_double_exponents(self):
        assert (1 << EBITS) > 2 * 1100
