"""Tests for the ZFP lifting transform and sequency ordering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.zfptransform import (
    fwd_lift,
    fwd_transform,
    inv_lift,
    inv_transform,
    sequency_order,
)
from repro.errors import DataShapeError


class TestLift:
    def test_near_exact_inverse(self, rng):
        """The lifting loses at most the shift parity bits: the round
        trip error is a few integer ULPs, tiny vs the fixed-point scale."""
        blocks = rng.integers(-(2 ** 40), 2 ** 40, size=(50, 4),
                              dtype=np.int64)
        out = inv_transform(fwd_transform(blocks))
        assert np.max(np.abs(out - blocks)) <= 4

    def test_3d_near_exact_inverse(self, rng):
        blocks = rng.integers(-(2 ** 40), 2 ** 40, size=(10, 4, 4, 4),
                              dtype=np.int64)
        out = inv_transform(fwd_transform(blocks))
        assert np.max(np.abs(out - blocks)) <= 16

    def test_constant_block_concentrates_in_dc(self):
        blocks = np.full((1, 4), 1 << 20, dtype=np.int64)
        coeffs = fwd_transform(blocks)
        assert coeffs[0, 0] == 1 << 20
        np.testing.assert_array_equal(coeffs[0, 1:], 0)

    def test_smooth_block_energy_compaction(self):
        """A linear ramp's energy must concentrate in low coefficients."""
        ramp = (np.arange(4, dtype=np.int64) * (1 << 20))[None, :]
        coeffs = fwd_transform(ramp)[0]
        energy = coeffs.astype(np.float64) ** 2
        assert energy[:2].sum() / energy.sum() > 0.99

    def test_transform_does_not_overflow_guard_bits(self, rng):
        blocks = rng.integers(-(2 ** 43), 2 ** 43, size=(100, 4, 4),
                              dtype=np.int64)
        coeffs = fwd_transform(blocks)
        assert np.max(np.abs(coeffs)) < 2 ** 47

    def test_wrong_axis_length_rejected(self):
        with pytest.raises(DataShapeError):
            fwd_lift(np.zeros((2, 5), dtype=np.int64), 1)
        with pytest.raises(DataShapeError):
            inv_lift(np.zeros((2, 3), dtype=np.int64), 1)


class TestSequencyOrder:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_is_permutation(self, d):
        perm = sequency_order(d)
        assert sorted(perm.tolist()) == list(range(4 ** d))

    def test_1d_is_identity(self):
        np.testing.assert_array_equal(sequency_order(1), np.arange(4))

    def test_2d_starts_with_dc_and_low_frequencies(self):
        perm = sequency_order(2)
        assert perm[0] == 0          # (0, 0)
        assert set(perm[1:3].tolist()) == {1, 4}  # (0,1) and (1,0)

    def test_total_degree_nondecreasing(self):
        perm = sequency_order(3)
        coords = np.stack(np.unravel_index(perm, (4, 4, 4)), axis=1)
        degrees = coords.sum(axis=1)
        assert np.all(np.diff(degrees) >= 0)

    def test_invalid_dim_rejected(self):
        with pytest.raises(DataShapeError):
            sequency_order(0)
        with pytest.raises(DataShapeError):
            sequency_order(5)

    def test_cached(self):
        assert sequency_order(2) is sequency_order(2)


@given(st.integers(0, 2 ** 32), st.integers(1, 3))
def test_roundtrip_property(seed, d):
    rng = np.random.default_rng(seed)
    blocks = rng.integers(-(2 ** 30), 2 ** 30, size=(8,) + (4,) * d,
                          dtype=np.int64)
    out = inv_transform(fwd_transform(blocks))
    # Error bounded by a handful of parity ULPs regardless of input.
    assert np.max(np.abs(out - blocks)) <= 4 ** d
