"""Unit and property tests for the MSB-first bit I/O layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.bitio import BitReader, BitWriter
from repro.errors import CodecError


class TestBitWriter:
    def test_empty_writer_yields_empty_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_single_bits_pack_msb_first(self):
        w = BitWriter()
        for bit in (1, 0, 1, 1):
            w.write_bit(bit)
        # 1011 padded with zeros -> 0b10110000
        assert w.getvalue() == bytes([0b10110000])

    def test_multibit_write(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0b1, 1)
        assert w.getvalue() == bytes([0b10110000])

    def test_len_counts_bits(self):
        w = BitWriter()
        w.write(0x3FF, 10)
        assert len(w) == 10

    def test_zero_width_write_is_noop(self):
        w = BitWriter()
        w.write(0, 0)
        assert len(w) == 0

    def test_value_too_wide_raises(self):
        with pytest.raises(CodecError):
            BitWriter().write(8, 3)

    def test_negative_value_raises(self):
        with pytest.raises(CodecError):
            BitWriter().write(-1, 4)

    def test_negative_width_raises(self):
        with pytest.raises(CodecError):
            BitWriter().write(0, -1)

    def test_write_bits_array(self):
        w = BitWriter()
        w.write_bits_array(np.array([1, 2, 3], dtype=np.uint64), 2)
        # 01 10 11 -> 0b01101100
        assert w.getvalue() == bytes([0b01101100])

    def test_write_bits_array_overflow_raises(self):
        with pytest.raises(CodecError):
            BitWriter().write_bits_array(np.array([4], dtype=np.uint64), 2)

    def test_write_bitplane(self):
        w = BitWriter()
        w.write_bitplane(np.array([1, 0, 0, 1], dtype=np.uint8))
        assert w.getvalue() == bytes([0b10010000])


class TestBitReader:
    def test_read_matches_write(self):
        w = BitWriter()
        w.write(0b1101, 4)
        w.write(0b001, 3)
        r = BitReader(w.getvalue())
        assert r.read(4) == 0b1101
        assert r.read(3) == 0b001

    def test_read_bit(self):
        r = BitReader(bytes([0b10000000]))
        assert r.read_bit() == 1
        assert r.read_bit() == 0

    def test_underrun_raises(self):
        r = BitReader(b"\x00")
        r.read(8)
        with pytest.raises(CodecError):
            r.read(1)

    def test_position_and_remaining(self):
        r = BitReader(b"\xff\x00")
        assert len(r) == 16
        r.read(5)
        assert r.position == 5
        assert r.remaining == 11

    def test_read_bits_array_roundtrip(self):
        values = np.array([5, 0, 7, 3, 1], dtype=np.uint64)
        w = BitWriter()
        w.write_bits_array(values, 3)
        out = BitReader(w.getvalue()).read_bits_array(5, 3)
        np.testing.assert_array_equal(out, values)

    def test_read_bitplane_roundtrip(self):
        plane = np.array([1, 1, 0, 1, 0, 0, 1, 0, 1], dtype=np.uint8)
        w = BitWriter()
        w.write_bitplane(plane)
        out = BitReader(w.getvalue()).read_bitplane(plane.size)
        np.testing.assert_array_equal(out, plane)

    def test_align_to_byte(self):
        r = BitReader(b"\xff\xff")
        r.read(3)
        r.align_to_byte()
        assert r.position == 8

    def test_align_on_boundary_is_noop(self):
        r = BitReader(b"\xff\xff")
        r.read(8)
        r.align_to_byte()
        assert r.position == 8


@given(st.lists(st.tuples(st.integers(0, 2 ** 32 - 1),
                          st.integers(32, 40)), max_size=30))
def test_scalar_roundtrip_property(fields):
    """Any mixed sequence of (value, width) writes reads back exactly."""
    w = BitWriter()
    for value, width in fields:
        w.write(value, width)
    r = BitReader(w.getvalue())
    for value, width in fields:
        assert r.read(width) == value


@given(st.integers(1, 16),
       st.lists(st.integers(0, 2 ** 16 - 1), min_size=1, max_size=100))
def test_array_roundtrip_property(extra_bits, values):
    """Vector writes interleaved with scalar writes round-trip."""
    width = max(v.bit_length() for v in values) or 1
    arr = np.asarray(values, dtype=np.uint64)
    w = BitWriter()
    w.write(1, extra_bits)
    w.write_bits_array(arr, width)
    r = BitReader(w.getvalue())
    assert r.read(extra_bits) == 1
    np.testing.assert_array_equal(r.read_bits_array(arr.size, width), arr)
