"""Tests for the shared positional-section container frame."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.container import pack_sections, unpack_sections
from repro.errors import FormatError

MAGIC = b"TST1"


def test_roundtrip_basic():
    sections = [b"alpha", b"", b"\x00\x01\x02"]
    blob = pack_sections(MAGIC, 3, sections)
    assert unpack_sections(blob, MAGIC, 3) == sections


def test_empty_section_list():
    blob = pack_sections(MAGIC, 1, [])
    assert unpack_sections(blob, MAGIC, 1) == []


def test_bad_magic_rejected():
    blob = pack_sections(MAGIC, 1, [b"x"])
    with pytest.raises(FormatError):
        unpack_sections(blob, b"OTHR", 1)


def test_version_mismatch_rejected():
    blob = pack_sections(MAGIC, 2, [b"x"])
    with pytest.raises(FormatError):
        unpack_sections(blob, MAGIC, 1)


def test_truncated_section_rejected():
    blob = pack_sections(MAGIC, 1, [b"0123456789"])
    with pytest.raises(FormatError):
        unpack_sections(blob[:-3], MAGIC, 1)


def test_overrunning_section_length_names_the_section():
    # Forge section 1's length field so it claims more bytes than the
    # buffer holds: the parser must name the offending section rather
    # than slice short (which would silently misalign everything after).
    blob = bytearray(pack_sections(MAGIC, 1, [b"aa", b"bbb"]))
    idx = blob.index(b"\x03bbb")
    blob[idx] = 0x7F
    with pytest.raises(FormatError, match=r"section 1 length 127"):
        unpack_sections(bytes(blob), MAGIC, 1)


def test_forged_huge_uvarint_length_rejected():
    # A multi-terabyte length field must fail the bounds check, not
    # reach a multi-terabyte slice/allocation.
    blob = MAGIC + b"\x01\x01" + b"\x80\x80\x80\x80\x80\x80\x01" + b"xy"
    with pytest.raises(FormatError, match="section 0 length"):
        unpack_sections(blob, MAGIC, 1)


def test_absurd_section_count_rejected():
    # Count says 2^35 sections but only a couple of bytes remain.
    blob = MAGIC + b"\x01" + b"\x80\x80\x80\x80\x80\x01" + b"ab"
    with pytest.raises(FormatError, match="section count"):
        unpack_sections(blob, MAGIC, 1)


def test_truncated_uvarint_raises_format_error():
    # A continuation bit with nothing after it: the varint layer's
    # CodecError must surface re-wrapped as FormatError.
    blob = MAGIC + b"\x01\x01" + b"\x80"
    with pytest.raises(FormatError, match="corrupt section frame"):
        unpack_sections(blob, MAGIC, 1)


@given(st.lists(st.binary(max_size=300), max_size=10),
       st.integers(0, 1000))
def test_roundtrip_property(sections, version):
    blob = pack_sections(MAGIC, version, sections)
    assert unpack_sections(blob, MAGIC, version) == sections


@given(st.lists(st.binary(max_size=60), min_size=1, max_size=5),
       st.data())
def test_truncation_fuzz_never_leaks(sections, data):
    # Any prefix of a valid frame either still parses (pure-suffix
    # truncation cannot always be detected by an unframed outer layer)
    # or raises FormatError -- never IndexError/ValueError/etc.
    blob = pack_sections(MAGIC, 1, sections)
    cut = data.draw(st.integers(len(MAGIC), len(blob) - 1))
    try:
        unpack_sections(blob[:cut], MAGIC, 1)
    except FormatError:
        pass
