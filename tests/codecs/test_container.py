"""Tests for the shared positional-section container frame."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.container import pack_sections, unpack_sections
from repro.errors import FormatError

MAGIC = b"TST1"


def test_roundtrip_basic():
    sections = [b"alpha", b"", b"\x00\x01\x02"]
    blob = pack_sections(MAGIC, 3, sections)
    assert unpack_sections(blob, MAGIC, 3) == sections


def test_empty_section_list():
    blob = pack_sections(MAGIC, 1, [])
    assert unpack_sections(blob, MAGIC, 1) == []


def test_bad_magic_rejected():
    blob = pack_sections(MAGIC, 1, [b"x"])
    with pytest.raises(FormatError):
        unpack_sections(blob, b"OTHR", 1)


def test_version_mismatch_rejected():
    blob = pack_sections(MAGIC, 2, [b"x"])
    with pytest.raises(FormatError):
        unpack_sections(blob, MAGIC, 1)


def test_truncated_section_rejected():
    blob = pack_sections(MAGIC, 1, [b"0123456789"])
    with pytest.raises(FormatError):
        unpack_sections(blob[:-3], MAGIC, 1)


@given(st.lists(st.binary(max_size=300), max_size=10),
       st.integers(0, 1000))
def test_roundtrip_property(sections, version):
    blob = pack_sections(MAGIC, version, sections)
    assert unpack_sections(blob, MAGIC, version) == sections
