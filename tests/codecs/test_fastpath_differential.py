"""Differential tests pinning the PR-2 fast paths to reference behavior.

Every rewritten hot path is checked bit-/byte-identical against its
pre-rewrite reference over the same seeded shape families used by
``test_property_seeded.py``:

* ``huffman_decode`` (chunked speculative) vs. the scalar cursor loop
  (kept in the module as ``_decode_scalar``), including cursor/
  ``next_offset`` and error-message parity on corrupt streams;
* the vectorized ``_canonical_codes`` vs. the original incremental
  loop (``_canonical_codes_ref``);
* the packed-accumulator ``BitWriter`` vs. a verbatim copy of the old
  one-byte-per-bit implementation;
* the decode-table / ``from_bytes`` caches (satellite: no per-call
  table rebuilds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.bitio import BitWriter
from repro.codecs.huffman import (
    HuffmanTable,
    _canonical_codes,
    _canonical_codes_ref,
    _decode_scalar,
    _SCALAR_CUTOFF,
    huffman_decode,
    huffman_encode,
)
from repro.codecs.varint import decode_uvarint
from repro.errors import CodecError

SEEDS = range(10)


def _decode_reference(blob: bytes, table: HuffmanTable, offset: int = 0):
    """The pre-rewrite decoder: scalar cursor walk over the bitstream."""
    sym_tab, len_tab, L = table.decode_tables()
    n, pos = decode_uvarint(blob, offset)
    if n == 0:
        return np.zeros(0, dtype=np.int64), pos
    if L == 0:
        raise CodecError("cannot decode with an empty Huffman table")
    buf = np.frombuffer(blob, dtype=np.uint8, offset=pos)
    if buf.size < 1:
        raise CodecError("empty Huffman bitstream")
    out, cursor = _decode_scalar(buf, n, sym_tab, len_tab, L)
    return out, pos + (cursor + 7) // 8


# -- huffman decode ---------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_huffman_decode_matches_scalar_seeded(seed):
    """Vectorized decode == scalar decode, bit for bit, cursor included."""
    rng = np.random.default_rng(8000 + seed)
    for _ in range(6):
        alphabet = int(rng.integers(2, 300))
        # Straddle _SCALAR_CUTOFF so both dispatcher branches and the
        # chunked phases (S >= 2) are exercised.
        n = int(rng.integers(0, 4 * _SCALAR_CUTOFF))
        if rng.random() < 0.5:
            p = 1.0 / np.arange(1, alphabet + 1)
            symbols = rng.choice(alphabet, size=n, p=p / p.sum())
        else:
            symbols = rng.integers(0, alphabet, size=n)
        symbols = symbols.astype(np.int64)
        table = HuffmanTable.from_symbols(symbols, alphabet_size=alphabet)
        blob = huffman_encode(symbols, table)
        got, pos = huffman_decode(blob, table)
        ref, ref_pos = _decode_reference(blob, table)
        np.testing.assert_array_equal(got, ref)
        assert pos == ref_pos == len(blob)
        np.testing.assert_array_equal(got, symbols)


def test_huffman_decode_matches_scalar_sections():
    """Concatenated sections: identical next_offset chaining."""
    rng = np.random.default_rng(99)
    table_syms = rng.integers(0, 40, size=5000).astype(np.int64)
    table = HuffmanTable.from_symbols(table_syms, alphabet_size=40)
    parts = [rng.integers(0, 40, size=int(m)).astype(np.int64)
             for m in (3000, 17, 0, 2500)]
    stream = b"".join(huffman_encode(p, table) for p in parts)
    pos = ref_pos = 0
    for part in parts:
        got, pos_new = huffman_decode(stream, table, offset=pos)
        ref, ref_pos_new = _decode_reference(stream, table, offset=ref_pos)
        np.testing.assert_array_equal(got, part)
        np.testing.assert_array_equal(ref, part)
        assert pos_new == ref_pos_new
        pos, ref_pos = pos_new, ref_pos_new
    assert pos == len(stream)


@pytest.mark.parametrize("n", [0, 1, _SCALAR_CUTOFF - 1, _SCALAR_CUTOFF,
                               _SCALAR_CUTOFF + 1, 3 * _SCALAR_CUTOFF + 7])
def test_huffman_decode_cutoff_boundary(n):
    rng = np.random.default_rng(n)
    symbols = rng.integers(0, 11, size=n).astype(np.int64)
    table = HuffmanTable.from_symbols(symbols, alphabet_size=11)
    blob = huffman_encode(symbols, table)
    got, pos = huffman_decode(blob, table)
    np.testing.assert_array_equal(got, symbols)
    assert pos == len(blob)


def test_huffman_decode_single_symbol_alphabet_large_n():
    # L == 1 with a degenerate one-symbol code: every bit is a symbol.
    symbols = np.zeros(5000, dtype=np.int64)
    table = HuffmanTable.from_symbols(symbols, alphabet_size=4)
    blob = huffman_encode(symbols, table)
    got, pos = huffman_decode(blob, table)
    np.testing.assert_array_equal(got, symbols)
    assert pos == len(blob)


@pytest.mark.parametrize("n", [10, 2 * _SCALAR_CUTOFF])
def test_huffman_decode_underrun_error_parity(n):
    """A truncated stream raises the same error from both decoders."""
    rng = np.random.default_rng(5)
    symbols = rng.integers(0, 64, size=n).astype(np.int64)
    table = HuffmanTable.from_symbols(symbols, alphabet_size=64)
    blob = huffman_encode(symbols, table)
    truncated = blob[: max(2, len(blob) // 3)]
    with pytest.raises(CodecError, match="underrun"):
        huffman_decode(truncated, table)
    with pytest.raises(CodecError, match="underrun"):
        _decode_reference(truncated, table)


@pytest.mark.parametrize("n", [10, 2 * _SCALAR_CUTOFF])
def test_huffman_decode_invalid_codeword_error_parity(n):
    """An all-ones stream hits an unused slot in a sparse code."""
    # Two used symbols of a 256-symbol alphabet leave invalid windows.
    symbols = np.tile([0, 1], n // 2 + 1)[:n].astype(np.int64)
    table = HuffmanTable.from_symbols(
        np.concatenate([symbols, np.arange(256)]), alphabet_size=256)
    blob = huffman_encode(symbols, table)
    n_enc, pos = decode_uvarint(blob)
    corrupt = blob[:pos] + b"\xff" * (len(blob) - pos) + b"\xff" * 8
    try:
        got, _ = huffman_decode(corrupt, table)
        vec_err = None
    except CodecError as e:
        vec_err = str(e)
    try:
        ref, _ = _decode_reference(corrupt, table)
        ref_err = None
    except CodecError as e:
        ref_err = str(e)
    assert vec_err == ref_err
    if vec_err is None:
        np.testing.assert_array_equal(got, ref)


def test_huffman_decode_empty_table_and_stream_errors():
    table = HuffmanTable(lengths=np.zeros(4, dtype=np.int64),
                         codes=np.zeros(4, dtype=np.uint64))
    with pytest.raises(CodecError, match="empty Huffman table"):
        huffman_decode(b"\x05", table)
    real = HuffmanTable.from_symbols(np.array([0, 1], dtype=np.int64))
    with pytest.raises(CodecError, match="empty Huffman bitstream"):
        huffman_decode(b"\x05", real)  # count=5, zero payload bytes


# -- satellite: L > 32 guard ------------------------------------------------


def test_decode_tables_rejects_window_overflow():
    """L > 32 would overflow the uint32 decode window; must be refused."""
    lengths = np.zeros(4, dtype=np.int64)
    lengths[0] = 33
    table = HuffmanTable(lengths=lengths, codes=np.zeros(4, dtype=np.uint64))
    with pytest.raises(CodecError, match="32-bit decode-window cap"):
        table.decode_tables()


def test_decode_tables_accepts_l_32_boundary():
    lengths = np.array([1, 2, 3, 3], dtype=np.int64)
    table = HuffmanTable(lengths=lengths, codes=_canonical_codes(lengths))
    sym_tab, len_tab, L = table.decode_tables()
    assert L == 3 and sym_tab.size == 8


# -- satellite: caches ------------------------------------------------------


def test_decode_tables_cached_per_instance():
    table = HuffmanTable.from_symbols(np.arange(50, dtype=np.int64))
    first = table.decode_tables()
    second = table.decode_tables()
    assert first[0] is second[0] and first[1] is second[1]
    assert not first[0].flags.writeable


def test_from_bytes_shares_cached_reconstruction():
    table = HuffmanTable.from_symbols(
        np.random.default_rng(3).integers(0, 100, size=1000).astype(np.int64))
    blob = table.to_bytes()
    t1, _ = HuffmanTable.from_bytes(blob)
    t2, _ = HuffmanTable.from_bytes(blob)
    # Same lru-cached arrays, not merely equal ones.
    assert t1.lengths is t2.lengths and t1.codes is t2.codes
    assert not t1.lengths.flags.writeable
    np.testing.assert_array_equal(t1.lengths, table.lengths)
    np.testing.assert_array_equal(t1.codes, table.codes)


# -- canonical code construction --------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_canonical_codes_match_reference(seed):
    rng = np.random.default_rng(7000 + seed)
    for _ in range(20):
        alphabet = int(rng.integers(1, 400))
        symbols = rng.integers(0, alphabet, size=int(rng.integers(0, 500)))
        table = HuffmanTable.from_symbols(symbols.astype(np.int64),
                                          alphabet_size=alphabet)
        np.testing.assert_array_equal(_canonical_codes(table.lengths),
                                      _canonical_codes_ref(table.lengths))


def test_canonical_codes_overflow_error_parity():
    bad = np.array([1, 1, 1], dtype=np.int64)  # 3 codes of length 1
    with pytest.raises(CodecError) as ref_err:
        _canonical_codes_ref(bad)
    with pytest.raises(CodecError) as vec_err:
        _canonical_codes(bad)
    assert str(vec_err.value) == str(ref_err.value)


# -- BitWriter ---------------------------------------------------------------


class _ReferenceBitWriter:
    """Verbatim copy of the pre-rewrite one-bit-per-element BitWriter."""

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._nbits = 0

    def __len__(self) -> int:
        return self._nbits

    def write(self, value: int, nbits: int) -> None:
        if nbits < 0:
            raise CodecError(f"negative bit count: {nbits}")
        if nbits == 0:
            return
        value = int(value)
        if value < 0 or (nbits < 64 and value >> nbits):
            raise CodecError(f"value {value} does not fit in {nbits} bits")
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        bits = ((value >> shifts) & 1).astype(np.uint8)
        self._chunks.append(bits)
        self._nbits += nbits

    def write_bit(self, bit: int) -> None:
        self.write(bit & 1, 1)

    def write_bits_array(self, values: np.ndarray, nbits: int) -> None:
        values = np.ascontiguousarray(values).astype(np.uint64, copy=False)
        if nbits == 0 or values.size == 0:
            return
        if nbits < 64 and np.any(values >> np.uint64(nbits)):
            raise CodecError(f"some values do not fit in {nbits} bits")
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        bits = ((values.reshape(-1, 1) >> shifts) & np.uint64(1)).astype(np.uint8)
        self._chunks.append(bits.reshape(-1))
        self._nbits += nbits * values.size

    def write_bitplane(self, plane: np.ndarray) -> None:
        plane = np.ascontiguousarray(plane, dtype=np.uint8).reshape(-1)
        self._chunks.append(plane & 1)
        self._nbits += plane.size

    def getvalue(self) -> bytes:
        if not self._chunks:
            return b""
        bits = np.concatenate(self._chunks)
        return np.packbits(bits).tobytes()


@pytest.mark.parametrize("seed", SEEDS)
def test_bitwriter_matches_reference_seeded(seed):
    """Packed-accumulator writer == reference after *every* operation."""
    rng = np.random.default_rng(9000 + seed)
    for _ in range(10):
        new, ref = BitWriter(), _ReferenceBitWriter()
        for _ in range(int(rng.integers(1, 16))):
            kind = int(rng.integers(0, 3))
            if kind == 0:
                nbits = int(rng.integers(0, 65))
                value = int(rng.integers(0, 1 << min(nbits, 63))) if nbits else 0
                new.write(value, nbits)
                ref.write(value, nbits)
            elif kind == 1:
                nbits = int(rng.integers(1, 17))
                vals = rng.integers(0, 1 << nbits,
                                    size=int(rng.integers(0, 60)),
                                    dtype=np.uint64)
                new.write_bits_array(vals, nbits)
                ref.write_bits_array(vals, nbits)
            else:
                plane = rng.integers(0, 2, size=int(rng.integers(0, 70)),
                                     dtype=np.uint8)
                new.write_bitplane(plane)
                ref.write_bitplane(plane)
            assert len(new) == len(ref)
            assert new.getvalue() == ref.getvalue()


def test_bitwriter_matches_reference_adversarial():
    new, ref = BitWriter(), _ReferenceBitWriter()
    for w in (new, ref):
        w.write(0, 0)
        w.write_bit(1)
        w.write(2**64 - 1, 64)
        w.write(1, 1)
        w.write_bits_array(np.zeros(0, dtype=np.uint64), 7)
        w.write_bitplane(np.tile([1, 0], 33).astype(np.uint8))
        w.write(0b101, 3)
    assert new.getvalue() == ref.getvalue()
    assert len(new) == len(ref)
    # Validation parity.
    for writer_cls in (BitWriter, _ReferenceBitWriter):
        w = writer_cls()
        with pytest.raises(CodecError, match="negative bit count"):
            w.write(1, -1)
        with pytest.raises(CodecError, match="does not fit"):
            w.write(8, 3)
        with pytest.raises(CodecError, match="does not fit"):
            w.write(-1, 3)
        with pytest.raises(CodecError, match="do not fit"):
            w.write_bits_array(np.array([9], dtype=np.uint64), 3)


def test_bitwriter_getvalue_non_destructive():
    w = BitWriter()
    w.write(0b101, 3)
    assert w.getvalue() == w.getvalue() == b"\xa0"
    w.write(0b11111, 5)
    w.write(0xAB, 8)
    ref = _ReferenceBitWriter()
    ref.write(0b101, 3)
    ref.write(0b11111, 5)
    ref.write(0xAB, 8)
    assert w.getvalue() == ref.getvalue()
