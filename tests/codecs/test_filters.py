"""Tests for the delta and scale-offset filter codecs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.filters import (
    delta_compress,
    delta_decompress,
    scale_offset_compress,
    scale_offset_decompress,
)
from repro.errors import ConfigError, DataShapeError, FormatError


class TestDelta:
    @pytest.mark.parametrize("dtype", ["<f4", "<f8"])
    @pytest.mark.parametrize("shape", [(1,), (7,), (5, 6), (3, 4, 5)])
    def test_lossless_roundtrip(self, rng, dtype, shape):
        arr = rng.normal(size=shape).astype(dtype)
        out = delta_decompress(delta_compress(arr))
        assert out.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(out, arr)

    def test_nan_and_inf_bit_exact(self):
        arr = np.array([0.0, np.nan, np.inf, -np.inf, -0.0, 1e-300],
                       dtype="<f8")
        out = delta_decompress(delta_compress(arr))
        np.testing.assert_array_equal(
            out.view("<u8"), arr.view("<u8"))

    def test_smooth_data_compresses(self, smooth_2d):
        blob = delta_compress(smooth_2d)
        assert len(blob) < smooth_2d.nbytes

    def test_empty_rejected(self):
        with pytest.raises(DataShapeError, match="empty"):
            delta_compress(np.zeros((0,), dtype="<f4"))

    def test_corrupt_payload_is_format_error(self, rng):
        blob = bytearray(delta_compress(
            rng.normal(size=(16,)).astype("<f4")))
        with pytest.raises(FormatError):
            delta_decompress(bytes(blob[:8]))
        blob[0] ^= 0xFF  # magic
        with pytest.raises(FormatError):
            delta_decompress(bytes(blob))

    def test_kwargs_tolerated(self, rng):
        # Filters accept-and-ignore foreign codec kwargs so they slot
        # into call sites that thread per-codec settings through.
        arr = rng.normal(size=(8,)).astype("<f4")
        out = delta_decompress(delta_compress(arr, eps=123.0))
        np.testing.assert_array_equal(out, arr)


class TestScaleOffset:
    @pytest.mark.parametrize("dtype", ["<f4", "<f8"])
    def test_error_bound_holds(self, rng, dtype):
        arr = (100.0 * rng.normal(size=(40, 3))).astype(dtype)
        eps = 1e-3
        out = scale_offset_decompress(scale_offset_compress(arr,
                                                            eps=eps))
        assert out.shape == arr.shape
        assert out.dtype == np.dtype(dtype)
        err = np.max(np.abs(out.astype("<f8") - arr.astype("<f8")))
        ulp = np.abs(arr).max() * 1e-6 if dtype == "<f4" else 0.0
        assert float(err) <= eps * (1 + 1e-9) + ulp

    def test_constant_field_exact(self):
        arr = np.full((9,), 2.5, dtype="<f8")
        out = scale_offset_decompress(scale_offset_compress(arr,
                                                            eps=1e-2))
        np.testing.assert_allclose(out, arr, atol=1e-2)

    def test_wide_range_uses_wide_codes(self):
        # A range demanding > 2**32 quantization bins must switch to
        # 8-byte codes rather than overflow.
        arr = np.array([0.0, 1e6], dtype="<f8")
        eps = 1e-5
        out = scale_offset_decompress(scale_offset_compress(arr,
                                                            eps=eps))
        assert float(np.max(np.abs(out - arr))) <= eps * (1 + 1e-9)

    def test_nonpositive_eps_rejected(self, rng):
        arr = rng.normal(size=(4,))
        for eps in (0.0, -1e-3):
            with pytest.raises(ConfigError, match="positive eps"):
                scale_offset_compress(arr, eps=eps)

    def test_nonfinite_rejected(self):
        arr = np.array([1.0, np.inf], dtype="<f8")
        with pytest.raises(DataShapeError, match="non-finite"):
            scale_offset_compress(arr, eps=1e-3)

    def test_corrupt_payload_is_format_error(self, rng):
        blob = scale_offset_compress(
            rng.normal(size=(16,)).astype("<f4"), eps=1e-3)
        with pytest.raises(FormatError):
            scale_offset_decompress(blob[:10])
        with pytest.raises(FormatError):
            scale_offset_decompress(b"XXXX" + blob[4:])
