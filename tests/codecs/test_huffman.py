"""Tests for canonical, length-limited Huffman coding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.huffman import (
    MAX_CODE_LENGTH,
    HuffmanTable,
    huffman_decode,
    huffman_encode,
)
from repro.errors import CodecError


def roundtrip(symbols: np.ndarray, alphabet: int | None = None):
    table = HuffmanTable.from_symbols(symbols, alphabet_size=alphabet)
    blob = huffman_encode(symbols, table)
    out, end = huffman_decode(blob, table)
    assert end == len(blob)
    np.testing.assert_array_equal(out, symbols)
    return table, blob


class TestTableConstruction:
    def test_two_symbol_code(self):
        table = HuffmanTable.from_counts(np.array([5, 5]))
        assert list(table.lengths) == [1, 1]
        assert sorted(table.codes.tolist()) == [0, 1]

    def test_single_symbol_gets_length_one(self):
        table = HuffmanTable.from_counts(np.array([0, 9, 0]))
        assert table.lengths[1] == 1
        assert table.lengths[0] == table.lengths[2] == 0

    def test_skewed_counts_give_short_code_to_common_symbol(self):
        counts = np.array([1000, 10, 10, 10, 10])
        table = HuffmanTable.from_counts(counts)
        assert table.lengths[0] == min(table.lengths[table.lengths > 0])

    def test_kraft_inequality_holds(self):
        rng = np.random.default_rng(3)
        counts = rng.integers(0, 1000, 300)
        table = HuffmanTable.from_counts(counts)
        used = table.lengths[table.lengths > 0]
        assert np.sum(2.0 ** (-used)) <= 1.0 + 1e-12

    def test_length_limit_respected(self):
        # Fibonacci-like counts force very long unrestricted codes.
        counts = np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144,
                           233, 377, 610, 987, 1597, 2584, 4181, 6765,
                           10946, 17711, 28657, 46368, 75025, 121393,
                           196418, 317811], dtype=np.int64)
        table = HuffmanTable.from_counts(counts, max_len=10)
        assert table.max_length <= 10
        used = table.lengths[table.lengths > 0]
        assert np.sum(2.0 ** (-used)) <= 1.0 + 1e-12

    def test_prefix_free(self):
        rng = np.random.default_rng(5)
        counts = rng.integers(1, 100, 40)
        table = HuffmanTable.from_counts(counts)
        codes = [
            format(int(c), f"0{int(ln)}b")
            for c, ln in zip(table.codes, table.lengths) if ln > 0
        ]
        for i, a in enumerate(codes):
            for j, b in enumerate(codes):
                if i != j:
                    assert not b.startswith(a)

    def test_negative_counts_rejected(self):
        with pytest.raises(CodecError):
            HuffmanTable.from_counts(np.array([1, -1]))

    def test_2d_counts_rejected(self):
        with pytest.raises(CodecError):
            HuffmanTable.from_counts(np.ones((2, 2)))

    def test_expected_bits(self):
        counts = np.array([8, 4, 2, 2])
        table = HuffmanTable.from_counts(counts)
        assert table.expected_bits(counts) == int(
            np.sum(counts * table.lengths)
        )


class TestSerialization:
    def test_table_roundtrip(self):
        rng = np.random.default_rng(7)
        counts = rng.integers(0, 500, 100)
        table = HuffmanTable.from_counts(counts)
        restored, pos = HuffmanTable.from_bytes(table.to_bytes())
        assert pos == len(table.to_bytes())
        np.testing.assert_array_equal(restored.lengths, table.lengths)
        np.testing.assert_array_equal(restored.codes, table.codes)

    def test_table_roundtrip_with_offset(self):
        table = HuffmanTable.from_counts(np.array([3, 1, 4]))
        buf = b"xx" + table.to_bytes() + b"tail"
        restored, pos = HuffmanTable.from_bytes(buf, 2)
        np.testing.assert_array_equal(restored.lengths, table.lengths)
        assert buf[pos:] == b"tail"


class TestEncodeDecode:
    def test_simple_roundtrip(self):
        roundtrip(np.array([0, 1, 2, 1, 0, 0, 0], dtype=np.int64))

    def test_empty_roundtrip(self):
        table = HuffmanTable.from_counts(np.array([1]))
        blob = huffman_encode(np.array([], dtype=np.int64), table)
        out, _ = huffman_decode(blob, table)
        assert out.size == 0

    def test_single_symbol_stream(self):
        roundtrip(np.zeros(500, dtype=np.int64), alphabet=1)

    def test_large_skewed_stream(self):
        rng = np.random.default_rng(11)
        symbols = rng.choice(64, size=20_000,
                             p=np.arange(64, 0, -1) / np.sum(np.arange(1, 65)))
        table, blob = roundtrip(symbols.astype(np.int64))
        # Entropy coding must beat the trivial 6-bit packing comfortably.
        assert len(blob) * 8 < 6 * symbols.size

    def test_out_of_alphabet_symbol_rejected(self):
        table = HuffmanTable.from_counts(np.array([1, 1]))
        with pytest.raises(CodecError):
            huffman_encode(np.array([2]), table)

    def test_symbol_without_code_rejected(self):
        table = HuffmanTable.from_counts(np.array([1, 0, 1]))
        with pytest.raises(CodecError):
            huffman_encode(np.array([1]), table)

    def test_decode_with_offset_and_concatenation(self):
        syms1 = np.array([0, 1, 0, 2], dtype=np.int64)
        syms2 = np.array([2, 2, 1], dtype=np.int64)
        table = HuffmanTable.from_symbols(np.concatenate([syms1, syms2]))
        blob = huffman_encode(syms1, table) + huffman_encode(syms2, table)
        out1, pos = huffman_decode(blob, table)
        out2, end = huffman_decode(blob, table, pos)
        np.testing.assert_array_equal(out1, syms1)
        np.testing.assert_array_equal(out2, syms2)
        assert end == len(blob)

    def test_truncated_stream_raises(self):
        symbols = np.arange(100, dtype=np.int64) % 7
        table = HuffmanTable.from_symbols(symbols)
        blob = huffman_encode(symbols, table)
        with pytest.raises(CodecError):
            huffman_decode(blob[: len(blob) // 4], table)

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=500))
    def test_roundtrip_property(self, values):
        roundtrip(np.asarray(values, dtype=np.int64))

    @given(st.integers(2, 600), st.integers(0, 2 ** 32))
    def test_random_alphabet_property(self, alphabet, seed):
        rng = np.random.default_rng(seed)
        symbols = rng.integers(0, alphabet, size=200)
        roundtrip(symbols.astype(np.int64), alphabet=alphabet)

    def test_max_code_length_constant_sane(self):
        assert 10 <= MAX_CODE_LENGTH <= 24
