"""Tests for the negabinary (base -2) mapping used by the ZFP coder."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.negabinary import int_to_negabinary, negabinary_to_int


def test_known_values():
    # Base -2: 0->0, 1->1, -1->11b (3), 2->110b (6), -2->10b (2)
    vals = np.array([0, 1, -1, 2, -2], dtype=np.int64)
    expected = np.array([0, 1, 3, 6, 2], dtype=np.uint64)
    np.testing.assert_array_equal(int_to_negabinary(vals), expected)


def test_roundtrip_small_range():
    vals = np.arange(-1000, 1000, dtype=np.int64)
    np.testing.assert_array_equal(
        negabinary_to_int(int_to_negabinary(vals)), vals
    )


def test_small_magnitudes_have_small_codes():
    """The property bit-plane coding depends on: |x| small => only
    low-order negabinary bits set."""
    vals = np.arange(-128, 129, dtype=np.int64)
    codes = int_to_negabinary(vals)
    assert int(codes.max()) < 1 << 9


def test_interpretation_as_base_minus_two():
    """Each code, read in base -2, equals the original value."""
    vals = np.array([5, -7, 13, -100], dtype=np.int64)
    for v, code in zip(vals, int_to_negabinary(vals)):
        total, place = 0, 1
        c = int(code)
        while c:
            if c & 1:
                total += place
            place *= -2
            c >>= 1
        assert total == v


@given(st.lists(st.integers(-(2 ** 52), 2 ** 52), min_size=1, max_size=64))
def test_roundtrip_property(values):
    arr = np.asarray(values, dtype=np.int64)
    np.testing.assert_array_equal(
        negabinary_to_int(int_to_negabinary(arr)), arr
    )
