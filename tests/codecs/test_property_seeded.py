"""Seeded property-style roundtrip tests for the codec substrate.

Each codec gets ~200 randomized roundtrip cases drawn from fixed
``np.random.default_rng`` seeds (10 parametrized seeds x 20 cases), so
failures reproduce exactly, plus a deterministic battery of adversarial
shapes: empty input, a single symbol, all-equal runs, alternating-sign
sequences, and max-magnitude int64 values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.huffman import HuffmanTable, huffman_decode, huffman_encode
from repro.codecs.negabinary import int_to_negabinary, negabinary_to_int
from repro.codecs.rle import rle_decode, rle_encode
from repro.codecs.varint import (
    decode_uvarint,
    encode_uvarint,
    zigzag_decode,
    zigzag_encode,
)

SEEDS = range(10)
CASES_PER_SEED = 20

I64_MIN = np.iinfo(np.int64).min
I64_MAX = np.iinfo(np.int64).max

#: Adversarial int64 sequences shared by the sign-carrying codecs.
ADVERSARIAL_SIGNED = [
    np.zeros(0, dtype=np.int64),                       # empty
    np.array([7], dtype=np.int64),                     # single symbol
    np.full(257, -3, dtype=np.int64),                  # all-equal
    np.tile([1, -1], 100).astype(np.int64),            # alternating sign
    np.array([I64_MIN, I64_MAX, 0, -1, 1], dtype=np.int64),  # extremes
    np.array([I64_MIN], dtype=np.int64),
    np.array([I64_MAX], dtype=np.int64),
]


def _random_signed(rng: np.random.Generator) -> np.ndarray:
    """A random int64 array spanning empty to large, narrow to 64-bit."""
    n = int(rng.integers(0, 400))
    bits = int(rng.integers(1, 64))
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1))
    arr = rng.integers(lo, hi, size=n, dtype=np.int64)
    # Sprinkle extremes so wide cases stress the 64-bit boundary.
    if n and rng.random() < 0.25:
        arr[rng.integers(0, n)] = rng.choice([I64_MIN, I64_MAX])
    return arr


# -- varint / zigzag --------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_uvarint_roundtrip_seeded(seed):
    rng = np.random.default_rng(1000 + seed)
    for _ in range(CASES_PER_SEED):
        bits = int(rng.integers(1, 65))
        value = int(rng.integers(0, 1 << min(bits, 63), dtype=np.uint64))
        if bits == 64 and rng.random() < 0.5:
            value = (1 << 64) - 1 - value  # top-half 64-bit values
        if value >= 1 << 64:
            value = (1 << 64) - 1
        blob = encode_uvarint(value)
        got, pos = decode_uvarint(blob)
        assert got == value and pos == len(blob)


def test_uvarint_adversarial():
    for value in (0, 1, 127, 128, 255, 300, 2**32, 2**63, 2**64 - 1):
        blob = encode_uvarint(value)
        assert decode_uvarint(blob) == (value, len(blob))
    # Concatenated stream decodes positionally.
    vals = [0, 127, 128, 2**40]
    stream = b"".join(encode_uvarint(v) for v in vals)
    pos, out = 0, []
    for _ in vals:
        v, pos = decode_uvarint(stream, pos)
        out.append(v)
    assert out == vals and pos == len(stream)


@pytest.mark.parametrize("seed", SEEDS)
def test_zigzag_roundtrip_seeded(seed):
    rng = np.random.default_rng(2000 + seed)
    for _ in range(CASES_PER_SEED):
        arr = _random_signed(rng)
        enc = zigzag_encode(arr)
        assert np.asarray(enc).dtype == np.uint64
        np.testing.assert_array_equal(zigzag_decode(enc), arr)


@pytest.mark.parametrize("arr", ADVERSARIAL_SIGNED, ids=repr)
def test_zigzag_adversarial(arr):
    np.testing.assert_array_equal(zigzag_decode(zigzag_encode(arr)), arr)
    for v in arr[:8].tolist():
        assert zigzag_decode(zigzag_encode(int(v))) == int(v)


def test_zigzag_ordering():
    # Small magnitudes map to small codes: 0,-1,1,-2 -> 0,1,2,3.
    vals = np.array([0, -1, 1, -2, 2], dtype=np.int64)
    np.testing.assert_array_equal(zigzag_encode(vals),
                                  np.arange(5, dtype=np.uint64))


# -- negabinary -------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_negabinary_roundtrip_seeded(seed):
    rng = np.random.default_rng(3000 + seed)
    for _ in range(CASES_PER_SEED):
        arr = _random_signed(rng)
        np.testing.assert_array_equal(
            negabinary_to_int(int_to_negabinary(arr)), arr)


@pytest.mark.parametrize("arr", ADVERSARIAL_SIGNED, ids=repr)
def test_negabinary_adversarial(arr):
    np.testing.assert_array_equal(
        negabinary_to_int(int_to_negabinary(arr)), arr)


def test_negabinary_small_values():
    # Base -2 ground truth for tiny magnitudes.
    expected = {0: 0b0, 1: 0b1, -1: 0b11, 2: 0b110, -2: 0b10, 3: 0b111}
    got = int_to_negabinary(np.array(list(expected), dtype=np.int64))
    np.testing.assert_array_equal(got, np.array(list(expected.values()),
                                                dtype=np.uint64))


# -- rle --------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_rle_roundtrip_seeded(seed):
    rng = np.random.default_rng(4000 + seed)
    for _ in range(CASES_PER_SEED):
        n = int(rng.integers(0, 500))
        # Runny data: few distinct symbols repeated in bursts.
        n_sym = int(rng.integers(1, 8))
        arr = np.repeat(
            rng.integers(0, 1 << int(rng.integers(1, 32)), size=n_sym),
            rng.integers(1, 40, size=n_sym),
        ).astype(np.int64)[:max(n, 0)]
        blob = rle_encode(arr)
        np.testing.assert_array_equal(rle_decode(blob), arr)


@pytest.mark.parametrize("arr", [
    np.zeros(0, dtype=np.int64),
    np.array([5], dtype=np.int64),
    np.full(1000, 9, dtype=np.int64),
    np.tile([0, 1], 128).astype(np.int64),  # worst case: runs of 1
    np.array([I64_MAX], dtype=np.int64),
], ids=["empty", "single", "all-equal", "alternating", "max-int64"])
def test_rle_adversarial(arr):
    np.testing.assert_array_equal(rle_decode(rle_encode(arr)), arr)


def test_rle_compresses_runs():
    arr = np.full(10_000, 3, dtype=np.int64)
    assert len(rle_encode(arr)) < 16


# -- bitio ------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_bitio_roundtrip_seeded(seed):
    rng = np.random.default_rng(5000 + seed)
    for _ in range(CASES_PER_SEED):
        ops = []
        w = BitWriter()
        for _ in range(int(rng.integers(1, 12))):
            kind = int(rng.integers(0, 3))
            if kind == 0:
                nbits = int(rng.integers(0, 65))
                value = int(rng.integers(0, 1 << min(nbits, 63))) if nbits else 0
                w.write(value, nbits)
                ops.append(("scalar", value, nbits))
            elif kind == 1:
                nbits = int(rng.integers(1, 17))
                vals = rng.integers(0, 1 << nbits,
                                    size=int(rng.integers(0, 50)),
                                    dtype=np.uint64)
                w.write_bits_array(vals, nbits)
                ops.append(("array", vals, nbits))
            else:
                plane = rng.integers(0, 2, size=int(rng.integers(0, 70)),
                                     dtype=np.uint8)
                w.write_bitplane(plane)
                ops.append(("plane", plane, None))
        r = BitReader(w.getvalue())
        for kind, payload, nbits in ops:
            if kind == "scalar":
                assert r.read(nbits) == payload
            elif kind == "array":
                np.testing.assert_array_equal(
                    r.read_bits_array(len(payload), nbits), payload)
            else:
                np.testing.assert_array_equal(
                    r.read_bitplane(len(payload)), payload)


def test_bitio_adversarial():
    # Empty writer -> empty bytes -> reader with nothing to give.
    w = BitWriter()
    assert w.getvalue() == b""
    r = BitReader(b"")
    assert len(r) == 0 and r.read(0) == 0
    # Single bit, max 64-bit value, alternating plane.
    w = BitWriter()
    w.write_bit(1)
    w.write(2**64 - 1, 64)
    plane = np.tile([1, 0], 33).astype(np.uint8)
    w.write_bitplane(plane)
    r = BitReader(w.getvalue())
    assert r.read_bit() == 1
    assert r.read(64) == 2**64 - 1
    np.testing.assert_array_equal(r.read_bitplane(plane.size), plane)


# -- huffman ----------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_huffman_roundtrip_seeded(seed):
    rng = np.random.default_rng(6000 + seed)
    for _ in range(CASES_PER_SEED):
        alphabet = int(rng.integers(2, 300))
        n = int(rng.integers(0, 400))
        # Skewed (Zipf-ish) distributions exercise long codewords.
        if rng.random() < 0.5:
            p = 1.0 / np.arange(1, alphabet + 1)
            symbols = rng.choice(alphabet, size=n, p=p / p.sum())
        else:
            symbols = rng.integers(0, alphabet, size=n)
        symbols = symbols.astype(np.int64)
        table = HuffmanTable.from_symbols(symbols, alphabet_size=alphabet)
        blob = huffman_encode(symbols, table)
        got, pos = huffman_decode(blob, table)
        np.testing.assert_array_equal(got, symbols)
        assert pos == len(blob)


@pytest.mark.parametrize("symbols", [
    np.zeros(0, dtype=np.int64),
    np.array([4], dtype=np.int64),
    np.full(513, 2, dtype=np.int64),
    np.tile([0, 1], 200).astype(np.int64),
], ids=["empty", "single", "all-equal", "alternating"])
def test_huffman_adversarial(symbols):
    table = HuffmanTable.from_symbols(symbols, alphabet_size=8)
    blob = huffman_encode(symbols, table)
    got, pos = huffman_decode(blob, table)
    np.testing.assert_array_equal(got, symbols)
    assert pos == len(blob)


def test_huffman_sections_concatenate():
    # next_offset lets independently coded sections share one buffer.
    rng = np.random.default_rng(77)
    a = rng.integers(0, 16, size=100).astype(np.int64)
    b = rng.integers(0, 16, size=37).astype(np.int64)
    table = HuffmanTable.from_symbols(np.concatenate([a, b]),
                                      alphabet_size=16)
    stream = huffman_encode(a, table) + huffman_encode(b, table)
    got_a, pos = huffman_decode(stream, table)
    got_b, end = huffman_decode(stream, table, offset=pos)
    np.testing.assert_array_equal(got_a, a)
    np.testing.assert_array_equal(got_b, b)
    assert end == len(stream)
