"""Tests for the run-length codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.rle import rle_decode, rle_encode
from repro.errors import CodecError


def test_empty_roundtrip():
    assert rle_decode(rle_encode(np.array([], dtype=np.int64))).size == 0


def test_single_run():
    arr = np.full(1000, 7, dtype=np.int64)
    blob = rle_encode(arr)
    assert len(blob) < 10  # one (symbol, run) pair
    np.testing.assert_array_equal(rle_decode(blob), arr)


def test_alternating_worst_case():
    arr = np.tile([0, 1], 50).astype(np.int64)
    np.testing.assert_array_equal(rle_decode(rle_encode(arr)), arr)


def test_negative_symbol_rejected():
    with pytest.raises(CodecError):
        rle_encode(np.array([-1], dtype=np.int64))

    # errors on decode of corrupt zero-run streams
def test_zero_run_stream_rejected():
    from repro.codecs.varint import encode_uvarint
    bad = encode_uvarint(4) + encode_uvarint(1) + encode_uvarint(0)
    with pytest.raises(CodecError):
        rle_decode(bad)


def test_dtype_control():
    arr = np.array([3, 3, 5], dtype=np.int64)
    out = rle_decode(rle_encode(arr), dtype=np.uint16)
    assert out.dtype == np.uint16
    np.testing.assert_array_equal(out, arr)


def test_sparse_index_plane_compresses_well():
    """Quantizer index planes (mostly one symbol) should shrink a lot."""
    rng = np.random.default_rng(0)
    arr = np.zeros(10_000, dtype=np.int64)
    arr[rng.choice(10_000, 50, replace=False)] = 255
    assert len(rle_encode(arr)) < 1000


@given(st.lists(st.integers(0, 300), max_size=200))
def test_roundtrip_property(values):
    arr = np.asarray(values, dtype=np.int64)
    np.testing.assert_array_equal(rle_decode(rle_encode(arr)), arr)
