"""Unit and property tests for LEB128 varints and zigzag mapping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.varint import (
    decode_uvarint,
    encode_uvarint,
    zigzag_decode,
    zigzag_encode,
)
from repro.errors import CodecError


class TestUvarint:
    @pytest.mark.parametrize("value,encoded", [
        (0, b"\x00"),
        (1, b"\x01"),
        (127, b"\x7f"),
        (128, b"\x80\x01"),
        (300, b"\xac\x02"),
    ])
    def test_known_encodings(self, value, encoded):
        assert encode_uvarint(value) == encoded
        assert decode_uvarint(encoded) == (value, len(encoded))

    def test_negative_raises(self):
        with pytest.raises(CodecError):
            encode_uvarint(-1)

    def test_truncated_raises(self):
        with pytest.raises(CodecError):
            decode_uvarint(b"\x80")

    def test_overlong_raises(self):
        with pytest.raises(CodecError):
            decode_uvarint(b"\x80" * 10 + b"\x01")

    def test_offset_decoding(self):
        buf = b"junk" + encode_uvarint(7) + encode_uvarint(500)
        v1, pos = decode_uvarint(buf, 4)
        v2, pos = decode_uvarint(buf, pos)
        assert (v1, v2) == (7, 500)
        assert pos == len(buf)

    @given(st.integers(0, 2 ** 63 - 1))
    def test_roundtrip_property(self, value):
        data = encode_uvarint(value)
        assert decode_uvarint(data) == (value, len(data))


class TestZigzag:
    @pytest.mark.parametrize("signed,unsigned", [
        (0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4),
    ])
    def test_known_scalar_mapping(self, signed, unsigned):
        assert zigzag_encode(signed) == unsigned
        assert zigzag_decode(unsigned) == signed

    def test_array_roundtrip(self):
        arr = np.array([0, -1, 1, 2 ** 40, -(2 ** 40), 7], dtype=np.int64)
        enc = zigzag_encode(arr)
        assert enc.dtype == np.uint64
        np.testing.assert_array_equal(zigzag_decode(enc), arr)

    def test_encoded_array_is_nonnegative_ordered_by_magnitude(self):
        arr = np.array([-3, -2, -1, 0, 1, 2, 3], dtype=np.int64)
        enc = np.asarray(zigzag_encode(arr), dtype=np.uint64)
        # |x| small -> code small (the property Huffman relies on).
        assert enc.max() == 6

    @given(st.integers(-(2 ** 62), 2 ** 62))
    def test_scalar_roundtrip_property(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    @given(st.lists(st.integers(-(2 ** 62), 2 ** 62), max_size=50))
    def test_array_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.int64)
        np.testing.assert_array_equal(zigzag_decode(zigzag_encode(arr)), arr)
