"""Tests for the framed zlib wrapper."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.zlibc import zlib_compress, zlib_decompress
from repro.errors import CodecError


def test_compressible_payload_shrinks():
    data = b"abc" * 10_000
    frame = zlib_compress(data)
    assert len(frame) < len(data) // 10
    assert zlib_decompress(frame) == data


def test_incompressible_payload_stored_raw():
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
    frame = zlib_compress(data)
    # Raw fallback: overhead is just the mode byte + uvarint length.
    assert len(frame) <= len(data) + 8
    assert zlib_decompress(frame) == data


def test_empty_payload():
    assert zlib_decompress(zlib_compress(b"")) == b""


def test_numpy_array_input():
    arr = np.arange(100, dtype=np.float32)
    assert zlib_decompress(zlib_compress(arr)) == arr.tobytes()


def test_level_zero_allowed():
    data = b"x" * 100
    assert zlib_decompress(zlib_compress(data, level=0)) == data


def test_empty_frame_rejected():
    with pytest.raises(CodecError):
        zlib_decompress(b"")


def test_unknown_mode_rejected():
    with pytest.raises(CodecError):
        zlib_decompress(b"\x07\x00")


def test_length_mismatch_rejected():
    frame = bytearray(zlib_compress(b"hello world, hello world"))
    # Corrupt the declared raw length.
    frame[1] ^= 0x01
    with pytest.raises(CodecError):
        zlib_decompress(bytes(frame))


@given(st.binary(max_size=2048))
def test_roundtrip_property(data):
    assert zlib_decompress(zlib_compress(data)) == data
