"""Shared fixtures for the test suite.

Conventions:

* every random test uses a seeded ``np.random.default_rng`` so failures
  reproduce;
* dataset-shaped fixtures are deliberately small (hundreds to a few
  thousand values) -- full-size behaviour is covered by the benchmark
  harness, not the unit tests;
* hypothesis settings are tightened globally (no deadline, bounded
  examples) so the property tests stay fast and deterministic in CI.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Seeded generator; reseeded per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def smooth_2d(rng) -> np.ndarray:
    """A small, smooth, compressible 2-D field (float32)."""
    x = np.linspace(0, 4 * np.pi, 96)
    y = np.linspace(0, 2 * np.pi, 64)
    base = np.outer(np.sin(y), np.cos(x)) + 2.0
    noise = 0.01 * rng.normal(size=base.shape)
    return (base + noise).astype(np.float32)


@pytest.fixture
def rough_1d(rng) -> np.ndarray:
    """A hard-to-compress 1-D array (white noise, float32)."""
    return rng.normal(size=4096).astype(np.float32)


@pytest.fixture
def tiny_3d(rng) -> np.ndarray:
    """A small 3-D field with smooth structure (float32)."""
    g = np.linspace(-1, 1, 16)
    zz, yy, xx = np.meshgrid(g, g, g, indexing="ij")
    field = np.exp(-(xx ** 2 + yy ** 2 + zz ** 2) * 2.0)
    return (field + 0.005 * rng.normal(size=field.shape)).astype(np.float32)
