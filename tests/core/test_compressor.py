"""Tests for the DPZ compressor facade."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.metrics import mean_relative_error, psnr
from repro.core.compressor import DPZCompressor
from repro.core.config import DPZ_L, DPZ_S
from repro.errors import DataShapeError


class TestRoundtrip:
    def test_2d_shape_dtype_restored(self, smooth_2d):
        blob = DPZCompressor(DPZ_L).compress(smooth_2d)
        recon = DPZCompressor.decompress(blob)
        assert recon.shape == smooth_2d.shape
        assert recon.dtype == smooth_2d.dtype

    def test_3d_roundtrip(self, tiny_3d):
        blob = DPZCompressor(DPZ_S.with_tve_nines(5)).compress(tiny_3d)
        recon = DPZCompressor.decompress(blob)
        assert psnr(tiny_3d, recon) > 40.0

    def test_1d_roundtrip(self, rng):
        data = np.cumsum(rng.normal(size=4096)).astype(np.float32)
        blob = DPZCompressor(DPZ_L.with_tve_nines(4)).compress(data)
        recon = DPZCompressor.decompress(blob)
        assert psnr(data, recon) > 30.0

    def test_float64_input(self, rng):
        data = np.cumsum(rng.normal(size=(64, 64)), axis=1)
        blob = DPZCompressor(DPZ_S.with_tve_nines(6)).compress(data)
        recon = DPZCompressor.decompress(blob)
        assert recon.dtype == np.float64
        assert psnr(data, recon) > 50.0

    def test_int_input_coerced(self):
        data = (np.arange(4096) % 37).reshape(64, 64)
        blob = DPZCompressor(DPZ_L).compress(data)
        assert DPZCompressor.decompress(blob).dtype == np.float64

    def test_constant_data(self):
        data = np.full((32, 32), 5.0, dtype=np.float32)
        recon = DPZCompressor.decompress(DPZCompressor(DPZ_L).compress(data))
        np.testing.assert_allclose(recon, data, atol=1e-5)

    def test_empty_rejected(self):
        with pytest.raises(DataShapeError):
            DPZCompressor(DPZ_L).compress(np.zeros(0, dtype=np.float32))


class TestQuality:
    def test_theta_tracks_p(self, smooth_2d):
        """Range-relative mean error stays within an order of P."""
        for cfg, cap in ((DPZ_L.with_tve_nines(5), 2e-3),
                         (DPZ_S.with_tve_nines(5), 2e-3)):
            blob = DPZCompressor(cfg).compress(smooth_2d)
            recon = DPZCompressor.decompress(blob)
            assert mean_relative_error(smooth_2d, recon) < cap

    def test_dpz_s_reaches_higher_psnr_than_dpz_l(self, smooth_2d):
        """The paper's DPZ-l ceiling: at tight TVE, the strict scheme
        must climb past the loose scheme's quantization floor."""
        def run(cfg):
            blob = DPZCompressor(cfg).compress(smooth_2d)
            return psnr(smooth_2d, DPZCompressor.decompress(blob))

        assert run(DPZ_S.with_tve_nines(7)) > run(DPZ_L.with_tve_nines(7))

    def test_tighter_tve_higher_psnr(self, smooth_2d):
        vals = []
        for nines in (2, 4, 6):
            blob = DPZCompressor(DPZ_S.with_tve_nines(nines)).compress(
                smooth_2d)
            vals.append(psnr(smooth_2d, DPZCompressor.decompress(blob)))
        assert vals == sorted(vals)

    def test_knee_mode_compresses_aggressively(self, smooth_2d):
        blob_knee = DPZCompressor(DPZ_L.with_knee()).compress(smooth_2d)
        blob_tve7 = DPZCompressor(DPZ_L.with_tve_nines(7)).compress(
            smooth_2d)
        assert len(blob_knee) <= len(blob_tve7)


class TestStats:
    def test_stats_fields(self, smooth_2d):
        blob, st = DPZCompressor(DPZ_L).compress_with_stats(smooth_2d)
        assert st.compressed_nbytes == len(blob)
        assert st.original_nbytes == smooth_2d.nbytes
        assert st.cr > 1.0
        assert st.k >= 1
        assert 0.0 <= st.outlier_fraction <= 1.0
        assert {"decompose", "dct", "pca", "quantize", "encode"} <= \
            set(st.times)

    def test_stage_crs_multiply_to_roughly_total(self, smooth_2d):
        _, st = DPZCompressor(DPZ_L.with_tve_nines(4)).compress_with_stats(
            smooth_2d)
        product = st.cr_stage12 * st.cr_stage3 * st.cr_zlib
        # Product ignores basis/header overhead; same order of magnitude.
        assert 0.3 * st.cr < product < 4.0 * st.cr

    def test_stage_psnr_option(self, smooth_2d):
        _, st = DPZCompressor(DPZ_S).compress_with_stats(smooth_2d,
                                                         stage_psnr=True)
        assert st.psnr_stage12 is not None and st.psnr_final is not None
        assert st.delta_psnr >= -0.5  # stage 3 cannot improve accuracy
        assert st.psnr_final == pytest.approx(
            psnr(smooth_2d, DPZCompressor.decompress(
                DPZCompressor(DPZ_S).compress(smooth_2d))), abs=1e-6)

    def test_bitrate_property(self, smooth_2d):
        _, st = DPZCompressor(DPZ_L).compress_with_stats(smooth_2d)
        assert np.isclose(st.bitrate, 32.0 / st.cr)

    def test_delta_psnr_none_without_option(self, smooth_2d):
        _, st = DPZCompressor(DPZ_L).compress_with_stats(smooth_2d)
        assert st.delta_psnr is None


class TestSamplingIntegration:
    def test_use_sampling_roundtrip(self, smooth_2d):
        cfg = replace(DPZ_L.with_tve_nines(4), use_sampling=True)
        blob, st = DPZCompressor(cfg).compress_with_stats(smooth_2d)
        assert st.sampling is not None
        recon = DPZCompressor.decompress(blob)
        assert psnr(smooth_2d, recon) > 30.0

    def test_probe_standalone(self, smooth_2d):
        report = DPZCompressor(DPZ_L).probe(smooth_2d)
        assert report.k_estimate >= 1
        assert report.cr_low <= report.cr_high

    def test_standardize_always_and_never(self, smooth_2d):
        for mode in ("always", "never"):
            cfg = replace(DPZ_L, standardize=mode)
            blob, st = DPZCompressor(cfg).compress_with_stats(smooth_2d)
            assert st.standardized == (mode == "always")
            DPZCompressor.decompress(blob)  # must still round-trip


class TestParallel:
    def test_parallel_matches_serial(self, rng):
        data = np.cumsum(rng.normal(size=(128, 128)), axis=1).astype(
            np.float32)
        cfg_serial = replace(DPZ_L, n_jobs=1)
        cfg_par = replace(DPZ_L, n_jobs=4)
        b1 = DPZCompressor(cfg_serial).compress(data)
        b2 = DPZCompressor(cfg_par).compress(data)
        r1 = DPZCompressor.decompress(b1)
        r2 = DPZCompressor.decompress(b2)
        np.testing.assert_allclose(r1, r2, atol=1e-5)
