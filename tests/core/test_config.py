"""Tests for DPZConfig and the published schemes."""

from __future__ import annotations

import pytest

from repro.core.config import DPZ_L, DPZ_S, DPZConfig
from repro.errors import ConfigError


def test_paper_schemes():
    assert DPZ_L.p == 1e-3 and DPZ_L.index_bytes == 1
    assert DPZ_S.p == 1e-4 and DPZ_S.index_bytes == 2


def test_n_bins_reserves_escape_code():
    assert DPZ_L.n_bins == 255
    assert DPZ_S.n_bins == 65535


def test_with_tve_nines():
    cfg = DPZ_L.with_tve_nines(5)
    assert cfg.k_mode == "tve"
    assert abs(cfg.tve - 0.99999) < 1e-12
    assert cfg.p == DPZ_L.p  # scheme params untouched


def test_with_knee():
    cfg = DPZ_S.with_knee("polyn")
    assert cfg.k_mode == "knee" and cfg.knee_fit == "polyn"


def test_frozen():
    with pytest.raises(Exception):
        DPZ_L.p = 2.0  # type: ignore[misc]


@pytest.mark.parametrize("kwargs", [
    {"p": 0.0},
    {"p": -1e-3},
    {"p_mode": "weird"},
    {"index_bytes": 3},
    {"k_mode": "magic"},
    {"k_mode": "fixed"},                      # missing fixed_k
    {"k_mode": "fixed", "fixed_k": 0},
    {"tve": 0.0},
    {"tve": 1.5},
    {"knee_fit": "cubic"},
    {"standardize": "maybe"},
    {"sampling_subsets": 1},
    {"sampling_picks": 0},
    {"sampling_picks": 20, "sampling_subsets": 10},
    {"sampling_rate": 0.0},
    {"max_ratio": 1},
    {"zlib_level": 10},
    {"n_jobs": -2},
])
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigError):
        DPZConfig(**kwargs)


def test_valid_fixed_k():
    cfg = DPZConfig(k_mode="fixed", fixed_k=5)
    assert cfg.fixed_k == 5


@pytest.mark.parametrize("solver", ["auto", "dense", "randomized"])
def test_valid_pca_solver(solver):
    assert DPZConfig(pca_solver=solver).pca_solver == solver


def test_invalid_pca_solver_rejected():
    with pytest.raises(ConfigError):
        DPZConfig(pca_solver="lanczos")
