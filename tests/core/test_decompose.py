"""Tests for stage 1a: block decomposition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.decompose import decompose, plan_decomposition, reassemble
from repro.errors import DataShapeError


class TestPlan:
    def test_paper_example_128_cubed(self):
        plan = plan_decomposition((128, 128, 128))
        assert (plan.m_blocks, plan.n_points) == (1024, 2048)
        assert plan.pad == 0

    def test_paper_example_cesm(self):
        plan = plan_decomposition((1800, 3600))
        assert (plan.m_blocks, plan.n_points) == (1800, 3600)

    def test_m_strictly_less_than_n(self):
        for shape in [(64, 64, 64), (450, 900), (2 ** 18,), (1000,)]:
            plan = plan_decomposition(shape)
            assert plan.m_blocks < plan.n_points

    def test_ratio_is_smallest_available(self):
        # 2^18 = 2 * (2^8.5)^2 is impossible; d=4 gives M=256.
        plan = plan_decomposition((2 ** 18,))
        assert plan.ratio == 4
        assert plan.pad == 0

    def test_awkward_size_padded(self):
        plan = plan_decomposition((997,))  # prime
        assert plan.pad > 0
        assert plan.padded_total == 2 * plan.m_blocks ** 2
        assert plan.padded_total >= 997

    def test_padding_is_minimal_for_the_2m2_family(self):
        plan = plan_decomposition((1003,))
        m = plan.m_blocks
        assert 2 * (m - 1) ** 2 < 1003  # one step smaller would not fit

    def test_too_small_rejected(self):
        with pytest.raises(DataShapeError):
            plan_decomposition((4,))

    def test_invalid_shape_rejected(self):
        with pytest.raises(DataShapeError):
            plan_decomposition(())
        with pytest.raises(DataShapeError):
            plan_decomposition((0, 5))


class TestRoundtrip:
    @pytest.mark.parametrize("shape", [
        (128,), (96, 96), (16, 16, 16), (31, 37), (997,), (12, 34, 5),
    ])
    def test_exact_reassembly(self, shape, rng):
        data = rng.normal(size=shape)
        blocks, plan = decompose(data)
        np.testing.assert_array_equal(reassemble(blocks, plan), data)

    def test_blocks_preserve_flat_order(self, rng):
        data = rng.normal(size=(16, 32))
        blocks, plan = decompose(data)
        flat = data.reshape(-1)
        np.testing.assert_array_equal(blocks[0],
                                      flat[: plan.n_points])

    def test_padding_replicates_last_value(self):
        data = np.arange(997, dtype=np.float64)
        blocks, plan = decompose(data)
        assert blocks.reshape(-1)[-1] == 996.0

    def test_wrong_block_shape_rejected(self, rng):
        data = rng.normal(size=(16, 16))
        blocks, plan = decompose(data)
        with pytest.raises(DataShapeError):
            reassemble(blocks[:, :-1], plan)


@given(st.integers(8, 5000))
def test_plan_properties(total):
    plan = plan_decomposition((total,))
    assert plan.m_blocks * plan.n_points >= total
    assert plan.m_blocks < plan.n_points
    assert plan.pad < plan.padded_total  # padding never dominates... loosely
    # Padding overhead is bounded (next 2*M^2 size is < ~3% above for
    # totals >= 8 only loosely; assert a generous cap).
    assert plan.pad <= plan.padded_total / 2
