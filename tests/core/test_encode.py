"""Tests for the stage-1b transform registry and pre-PCA truncation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encode import (
    TRANSFORMS,
    forward_transform,
    inverse_transform,
    truncate_coefficients,
)
from repro.errors import ConfigError


class TestTransformRegistry:
    @pytest.mark.parametrize("transform", TRANSFORMS)
    def test_roundtrip(self, transform, rng):
        blocks = rng.normal(size=(12, 96))
        coeffs = forward_transform(blocks, transform)
        out = inverse_transform(coeffs, transform)
        np.testing.assert_allclose(out, blocks, atol=1e-9)

    @pytest.mark.parametrize("transform", TRANSFORMS)
    def test_shape_preserved(self, transform, rng):
        blocks = rng.normal(size=(5, 64))
        assert forward_transform(blocks, transform).shape == (5, 64)

    def test_identity_is_identity(self, rng):
        blocks = rng.normal(size=(3, 32))
        np.testing.assert_array_equal(
            forward_transform(blocks, "identity"), blocks
        )

    def test_odd_lengths_roundtrip(self, rng):
        blocks = rng.normal(size=(4, 97))
        for transform in TRANSFORMS:
            out = inverse_transform(
                forward_transform(blocks, transform), transform
            )
            np.testing.assert_allclose(out, blocks, atol=1e-9)

    def test_unknown_transform_rejected(self, rng):
        with pytest.raises(ConfigError):
            forward_transform(rng.normal(size=(2, 8)), "dft")
        with pytest.raises(ConfigError):
            inverse_transform(rng.normal(size=(2, 8)), "dft")

    def test_parallel_matches_serial(self, rng):
        blocks = rng.normal(size=(300, 64))
        for transform in ("dct", "haar"):
            a = forward_transform(blocks, transform, n_jobs=1)
            b = forward_transform(blocks, transform, n_jobs=4)
            np.testing.assert_allclose(a, b, atol=1e-12)

    def test_dct_and_haar_preserve_energy(self, rng):
        blocks = rng.normal(size=(6, 128))
        for transform in ("dct", "haar"):
            coeffs = forward_transform(blocks, transform)
            assert np.isclose(np.linalg.norm(coeffs),
                              np.linalg.norm(blocks))


class TestTruncation:
    def test_noop_at_zero(self, rng):
        coeffs = rng.normal(size=(4, 16))
        out, zeroed = truncate_coefficients(coeffs, 0.0)
        assert zeroed == 0.0
        np.testing.assert_array_equal(out, coeffs)

    def test_zeroes_small_coefficients(self):
        coeffs = np.array([[100.0, 1.0, 0.001, -50.0]])
        out, zeroed = truncate_coefficients(coeffs, 1e-2)
        np.testing.assert_array_equal(out, [[100.0, 1.0, 0.0, -50.0]])
        assert np.isclose(zeroed, 0.25)

    def test_all_zero_input(self):
        out, zeroed = truncate_coefficients(np.zeros((2, 3)), 0.5)
        assert zeroed == 0.0

    def test_threshold_one_rejected(self, rng):
        with pytest.raises(ConfigError):
            truncate_coefficients(rng.normal(size=(2, 2)), 1.0)

    def test_energy_loss_bounded(self, rng):
        coeffs = rng.normal(size=(10, 100))
        out, _ = truncate_coefficients(coeffs, 1e-3)
        lost = np.sum((coeffs - out) ** 2) / np.sum(coeffs ** 2)
        assert lost < 1e-4


class TestCompressorIntegration:
    @pytest.mark.parametrize("transform", TRANSFORMS)
    def test_end_to_end_roundtrip(self, transform, smooth_2d):
        from dataclasses import replace

        import repro
        from repro.analysis.metrics import psnr

        cfg = replace(repro.DPZ_S.with_tve_nines(5), transform=transform)
        blob = repro.DPZCompressor(cfg).compress(smooth_2d)
        recon = repro.DPZCompressor.decompress(blob)
        assert recon.shape == smooth_2d.shape
        assert psnr(smooth_2d, recon) > 40.0

    def test_truncation_roundtrip(self, smooth_2d):
        from dataclasses import replace

        import repro
        from repro.analysis.metrics import psnr

        cfg = replace(repro.DPZ_L.with_tve_nines(4), dct_truncate=1e-5)
        blob, st = repro.DPZCompressor(cfg).compress_with_stats(smooth_2d)
        assert 0.0 <= st.truncated_fraction < 1.0
        recon = repro.DPZCompressor.decompress(blob)
        assert psnr(smooth_2d, recon) > 35.0

    def test_invalid_config_values(self):
        from dataclasses import replace

        import repro

        with pytest.raises(ConfigError):
            replace(repro.DPZ_L, transform="dft")
        with pytest.raises(ConfigError):
            replace(repro.DPZ_L, dct_truncate=1.5)
