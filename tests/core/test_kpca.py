"""Tests for stage 2: k-PCA selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kpca import fit_kpca
from repro.errors import ConfigError


def make_features(rng, n=300, m=24, rank=4, noise=1e-3):
    basis = rng.normal(size=(rank, m))
    weights = 5.0 * np.power(0.4, np.arange(rank))
    coeffs = rng.normal(size=(n, rank)) * weights
    return coeffs @ basis + noise * rng.normal(size=(n, m))


class TestTVEMode:
    def test_k_respects_threshold(self, rng):
        X = make_features(rng)
        res = fit_kpca(X, k_mode="tve", tve=0.999)
        assert res.tve_at_k >= 0.999 - 1e-9

    def test_tighter_tve_larger_k(self, rng):
        X = make_features(rng)
        k_loose = fit_kpca(X, k_mode="tve", tve=0.99).k
        k_tight = fit_kpca(X, k_mode="tve", tve=0.9999999).k
        assert k_tight >= k_loose

    def test_scores_shape(self, rng):
        X = make_features(rng)
        res = fit_kpca(X, k_mode="tve", tve=0.99)
        assert res.scores.shape == (X.shape[0], res.k)


class TestKneeMode:
    def test_knee_finds_informative_head(self, rng):
        X = make_features(rng, rank=4, noise=1e-4)
        res = fit_kpca(X, k_mode="knee", knee_fit="1d")
        assert 1 <= res.k <= 10

    def test_polyn_fit_supported(self, rng):
        X = make_features(rng)
        res = fit_kpca(X, k_mode="knee", knee_fit="polyn")
        assert 1 <= res.k <= X.shape[1]


class TestFixedMode:
    def test_fixed_k_used(self, rng):
        X = make_features(rng)
        assert fit_kpca(X, k_mode="fixed", fixed_k=7).k == 7

    def test_fixed_k_clamped(self, rng):
        X = make_features(rng, m=10)
        assert fit_kpca(X, k_mode="fixed", fixed_k=500).k == 10

    def test_fixed_without_k_rejected(self, rng):
        with pytest.raises(ConfigError):
            fit_kpca(make_features(rng), k_mode="fixed")


class TestReconstruction:
    def test_reconstruct_uses_stored_scores(self, rng):
        X = make_features(rng, noise=0.0)
        res = fit_kpca(X, k_mode="tve", tve=0.9999999)
        recon = res.reconstruct()
        np.testing.assert_allclose(recon, X, atol=1e-6)

    def test_reconstruct_accepts_external_scores(self, rng):
        X = make_features(rng)
        res = fit_kpca(X, k_mode="fixed", fixed_k=3)
        perturbed = res.scores + 1e-6
        r1 = res.reconstruct()
        r2 = res.reconstruct(perturbed)
        assert not np.array_equal(r1, r2)

    def test_truncation_error_equals_discarded_variance(self, rng):
        """Invariant 5 groundwork: with uncentered PCA the squared
        reconstruction error equals the discarded eigenvalue mass."""
        X = make_features(rng, noise=1e-2)
        res = fit_kpca(X, k_mode="fixed", fixed_k=2, center=False)
        err = X - res.reconstruct()
        n = X.shape[0]
        discarded = res.pca.explained_variance_[2:].sum() * (n - 1)
        assert np.isclose((err ** 2).sum(), discarded, rtol=1e-6)

    def test_unknown_mode_rejected(self, rng):
        with pytest.raises(ConfigError):
            fit_kpca(make_features(rng), k_mode="best")


def test_standardize_flag_plumbs_through(rng):
    X = make_features(rng) * np.concatenate([np.ones(12), 100 * np.ones(12)])
    res_plain = fit_kpca(X, k_mode="fixed", fixed_k=3, standardize=False)
    res_std = fit_kpca(X, k_mode="fixed", fixed_k=3, standardize=True)
    assert res_std.pca.scale_ is not None
    assert res_plain.pca.scale_ is None
