"""Differential tests for the fit_kpca fast path (PR-2 tentpole).

The uncentered dense path (``M <= 256``) must be *bit-identical* to the
pre-rewrite implementation (a generic full :meth:`PCA.fit` followed by
selection and projection); the truncated wide path (``M > 256``) must
agree functionally (same k, same leading subspace, orthonormal basis).
A whole-archive test pins the compressor output byte-for-byte against a
reference pipeline running the old fit.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.compressor as compressor_mod
from repro.analysis.knee import detect_knee
from repro.core.compressor import DPZCompressor
from repro.core.config import DPZ_L, DPZ_S
from repro.core.kpca import KPCAResult, fit_kpca
from repro.errors import ConfigError, DataShapeError
from repro.transforms.pca import PCA


def _fit_kpca_reference(features, *, k_mode="tve", tve=0.999, knee_fit="1d",
                        fixed_k=None, standardize=False, center=False,
                        **_ignored):
    """Verbatim pre-rewrite fit_kpca (generic full fit + selection)."""
    pca = PCA(standardize=standardize, center=center).fit(features)
    curve = pca.tve_curve()
    if k_mode == "tve":
        k = pca.components_for_tve(tve)
    elif k_mode == "knee":
        k = detect_knee(curve, method=knee_fit).k
    elif k_mode == "fixed":
        if fixed_k is None:
            raise ConfigError("k_mode='fixed' requires fixed_k")
        k = max(1, min(int(fixed_k), curve.size))
    else:
        raise ConfigError(f"unknown k_mode {k_mode!r}")
    scores = pca.transform(features, k=k)
    return KPCAResult(pca=pca, k=k, scores=scores,
                      tve_at_k=float(curve[k - 1]))


def _smoothish(rng, n, f):
    """Features with a decaying spectrum (DCT-like energy compaction)."""
    base = rng.standard_normal((n, f))
    decay = 1.0 / (1.0 + np.arange(f)) ** 1.5
    return base * decay


@pytest.mark.parametrize("standardize", [False, True])
@pytest.mark.parametrize("kwargs", [
    {"k_mode": "tve", "tve": 0.999},
    {"k_mode": "tve", "tve": 0.99},
    {"k_mode": "knee"},
    {"k_mode": "fixed", "fixed_k": 7},
    {"k_mode": "fixed", "fixed_k": 10_000},  # clamps to f
], ids=["tve3", "tve2", "knee", "fixed7", "fixed-clamp"])
def test_dense_path_bit_identical(standardize, kwargs):
    rng = np.random.default_rng(11)
    X = _smoothish(rng, 300, 48)
    got = fit_kpca(X, standardize=standardize, **kwargs)
    ref = _fit_kpca_reference(X, standardize=standardize, **kwargs)
    assert got.k == ref.k
    assert got.tve_at_k == ref.tve_at_k
    np.testing.assert_array_equal(got.pca.components_, ref.pca.components_)
    np.testing.assert_array_equal(got.pca.explained_variance_,
                                  ref.pca.explained_variance_)
    assert got.pca.total_variance_ == ref.pca.total_variance_
    np.testing.assert_array_equal(got.scores, ref.scores)
    if standardize:
        np.testing.assert_array_equal(got.pca.scale_, ref.pca.scale_)
    # The fast dense path keeps the full spectrum (diagnostics read the
    # discarded tail).
    assert got.pca.explained_variance_.size == X.shape[1]


def test_dense_path_full_spectrum_tail():
    rng = np.random.default_rng(12)
    X = _smoothish(rng, 120, 16)
    res = fit_kpca(X, k_mode="fixed", fixed_k=2)
    discarded = res.pca.explained_variance_[2:]
    assert discarded.size == 14 and np.all(discarded >= 0)


def test_wide_path_truncated_extraction():
    """M > 256: eigvalsh curve + leading-k extraction, same answer."""
    rng = np.random.default_rng(13)
    X = _smoothish(rng, 800, 300)
    got = fit_kpca(X, tve=0.999, solver="dense")
    ref = _fit_kpca_reference(X, tve=0.999)
    assert got.k == ref.k
    # Only the leading k are extracted on the wide path.
    assert got.pca.components_.shape == (got.k, 300)
    assert got.pca.explained_variance_.size == got.k
    assert got.tve_at_k == pytest.approx(ref.tve_at_k, rel=1e-10)
    np.testing.assert_allclose(got.pca.components_,
                               ref.pca.components_[:got.k], atol=1e-8)
    np.testing.assert_allclose(got.scores, ref.scores, atol=1e-8)
    # Orthonormal basis.
    gram = got.pca.components_ @ got.pca.components_.T
    np.testing.assert_allclose(gram, np.eye(got.k), atol=1e-10)


def test_wide_path_forces_eigsh_branch():
    """Small k on a wide matrix takes the Lanczos branch (k <= f // 4)."""
    rng = np.random.default_rng(14)
    n, f = 700, 280
    base = rng.standard_normal((n, f))
    decay = np.concatenate([np.full(5, 10.0), np.full(f - 5, 1e-3)])
    X = base * decay
    res = fit_kpca(X, tve=0.999, solver="dense")
    assert res.k <= f // 4  # precondition for the eigsh branch
    ref = _fit_kpca_reference(X, tve=0.999)
    assert res.k == ref.k
    np.testing.assert_allclose(res.pca.components_,
                               ref.pca.components_[:res.k], atol=1e-7)


def test_cov_reuse_bit_identical():
    rng = np.random.default_rng(15)
    X = _smoothish(rng, 200, 32)
    cov = (X.T @ X) / (X.shape[0] - 1)
    a = fit_kpca(X)
    b = fit_kpca(X, cov=cov)
    assert a.k == b.k
    np.testing.assert_array_equal(a.pca.components_, b.pca.components_)
    np.testing.assert_array_equal(a.scores, b.scores)


def test_compute_scores_false():
    rng = np.random.default_rng(16)
    X = _smoothish(rng, 150, 24)
    full = fit_kpca(X)
    lean = fit_kpca(X, compute_scores=False)
    assert lean.scores is None
    assert lean.k == full.k
    np.testing.assert_array_equal(lean.pca.components_, full.pca.components_)


def test_centered_fallback_bit_identical():
    rng = np.random.default_rng(17)
    X = _smoothish(rng, 100, 20) + 3.0
    got = fit_kpca(X, center=True)
    ref = _fit_kpca_reference(X, center=True)
    assert got.k == ref.k
    np.testing.assert_array_equal(got.pca.components_, ref.pca.components_)
    np.testing.assert_array_equal(got.pca.mean_, ref.pca.mean_)
    np.testing.assert_array_equal(got.scores, ref.scores)


def test_wide_samples_fallback_svd():
    """f > n routes through the generic SVD fit, identical to before."""
    rng = np.random.default_rng(18)
    X = _smoothish(rng, 30, 64)
    got = fit_kpca(X)
    ref = _fit_kpca_reference(X)
    assert got.k == ref.k
    np.testing.assert_array_equal(got.pca.components_, ref.pca.components_)
    np.testing.assert_array_equal(got.scores, ref.scores)


def test_validation_errors_preserved():
    rng = np.random.default_rng(19)
    X = _smoothish(rng, 50, 8)
    with pytest.raises(ConfigError, match="unknown k_mode"):
        fit_kpca(X, k_mode="bogus")
    with pytest.raises(ConfigError, match="requires fixed_k"):
        fit_kpca(X, k_mode="fixed")
    with pytest.raises(ConfigError, match="tve must be in"):
        fit_kpca(X, tve=1.5)
    with pytest.raises(DataShapeError, match="2-D"):
        fit_kpca(X[None])
    with pytest.raises(DataShapeError, match="at least 2 samples"):
        fit_kpca(X[:1])


# -- whole-archive byte identity --------------------------------------------


@pytest.mark.parametrize("cfg", [DPZ_L, DPZ_S], ids=["DPZ_L", "DPZ_S"])
def test_archive_bytes_identical_to_reference_fit(cfg, monkeypatch):
    """Compressing with the old fit_kpca yields the same archive bytes."""
    rng = np.random.default_rng(20)
    x = np.linspace(0, 6.0, 48)
    field = (np.sin(x)[:, None] * np.cos(2 * x)[None, :]
             + 0.05 * rng.standard_normal((48, 48))).astype(np.float32)
    blob_new = DPZCompressor(cfg).compress(field)
    monkeypatch.setattr(compressor_mod, "fit_kpca", _fit_kpca_reference)
    blob_ref = DPZCompressor(cfg).compress(field)
    assert blob_new == blob_ref
    recon = DPZCompressor.decompress(blob_new)
    assert recon.shape == field.shape and recon.dtype == field.dtype
