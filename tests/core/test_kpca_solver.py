"""Tests for the randomized truncated eigensolver in ``fit_kpca``.

The contract: whatever ``solver=`` picks, the returned basis is
orthonormal and the selected ``k`` satisfies the TVE threshold --
``solver`` trades fit time, never correctness.  Counters record which
path actually ran so the benchmarks (and these tests) can prove it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core.kpca import fit_kpca
from repro.errors import ConfigError
from repro.observability import (
    Tracer,
    counters_snapshot,
    metrics_reset,
    use_tracer,
)


def lowrank(rng, n=256, f=192, rank=6, noise=1e-3):
    """An (n, f) matrix with a sharp rank-``rank`` spectrum."""
    u = rng.normal(size=(n, rank))
    v = rng.normal(size=(rank, f))
    w = (2.0 ** -np.arange(rank))[None, :]
    return (u * w) @ v + noise * rng.normal(size=(n, f))


class TestSolverKnob:
    def test_unknown_solver_rejected(self, rng):
        with pytest.raises(ConfigError):
            fit_kpca(lowrank(rng), solver="quantum")

    @pytest.mark.parametrize("solver", ["auto", "dense", "randomized"])
    def test_tve_threshold_met_every_solver(self, rng, solver):
        x = lowrank(rng)
        res = fit_kpca(x, tve=0.999, solver=solver)
        assert res.tve_at_k >= 0.999

    def test_randomized_matches_dense_k(self, rng):
        x = lowrank(rng)
        dense = fit_kpca(x, tve=0.999, solver="dense")
        rand = fit_kpca(x, tve=0.999, solver="randomized")
        assert rand.k == dense.k

    def test_randomized_basis_orthonormal(self, rng):
        res = fit_kpca(lowrank(rng), solver="randomized")
        b = res.pca.components_
        gram = b @ b.T
        assert np.abs(gram - np.eye(b.shape[0])).max() < 1e-8

    def test_randomized_deterministic(self, rng):
        x = lowrank(rng)
        a = fit_kpca(x, solver="randomized")
        b = fit_kpca(x, solver="randomized")
        np.testing.assert_array_equal(a.pca.components_,
                                      b.pca.components_)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_fixed_k_randomized(self, rng):
        x = lowrank(rng)
        res = fit_kpca(x, k_mode="fixed", fixed_k=5, solver="randomized")
        assert res.k == 5
        assert res.scores.shape == (x.shape[0], 5)

    def test_scores_reconstruct_within_tve(self, rng):
        # Energy captured by the scores must match tve_at_k: the
        # randomized basis is a real projection, not an estimate.
        x = lowrank(rng)
        res = fit_kpca(x, tve=0.999, solver="randomized")
        recon = res.scores @ res.pca.components_[:res.k]
        energy = float((x * x).sum())
        captured = float((recon * recon).sum())
        assert captured / energy >= 0.999 - 1e-6


class TestSolverDispatch:
    def test_auto_small_feature_count_stays_dense(self, rng):
        x = lowrank(rng, f=64)  # below _RANDOMIZED_MIN_FEATURES
        with use_tracer(Tracer()):
            metrics_reset()
            fit_kpca(x, solver="auto")
            c = counters_snapshot()
        assert c.get("pca.solver.dense") == 1
        assert "pca.solver.randomized" not in c

    def test_auto_large_feature_count_goes_randomized(self, rng):
        x = lowrank(rng, f=192)
        with use_tracer(Tracer()):
            metrics_reset()
            fit_kpca(x, solver="auto")
            c = counters_snapshot()
        assert c.get("pca.solver.randomized") == 1

    def test_explicit_randomized_counted(self, rng):
        with use_tracer(Tracer()):
            metrics_reset()
            fit_kpca(lowrank(rng, f=64), solver="randomized")
            c = counters_snapshot()
        assert c.get("pca.solver.randomized") == 1

    def test_centered_falls_back_to_dense(self, rng):
        # The centered path has no randomized implementation; asking
        # for it must still produce a correct fit, via fallback.
        x = lowrank(rng)
        with use_tracer(Tracer()):
            metrics_reset()
            res = fit_kpca(x, center=True, solver="randomized")
            c = counters_snapshot()
        assert res.tve_at_k >= 0.999
        assert c.get("pca.solver.fallbacks") == 1
        assert c.get("pca.solver.dense") == 1

    def test_knee_mode_falls_back(self, rng):
        x = lowrank(rng)
        with use_tracer(Tracer()):
            metrics_reset()
            fit_kpca(x, k_mode="knee", solver="randomized")
            c = counters_snapshot()
        assert c.get("pca.solver.fallbacks") == 1


@settings(max_examples=25)
@given(rank=hst.integers(1, 10), seed=hst.integers(0, 2**31 - 1),
       nines=hst.integers(2, 6))
def test_property_randomized_meets_any_tve(rank, seed, nines):
    # Property (issue acceptance): for arbitrary low-rank inputs and
    # thresholds, the randomized solver's selected basis captures at
    # least the requested variance -- the error budget is a guarantee.
    rng = np.random.default_rng(seed)
    tve = 1.0 - 10.0 ** -nines
    x = lowrank(rng, n=192, f=160, rank=rank)
    res = fit_kpca(x, tve=tve, solver="randomized")
    assert res.tve_at_k >= tve - 1e-9
    recon = res.scores @ res.pca.components_[:res.k]
    energy = float((x * x).sum())
    resid = float(((x - recon) ** 2).sum())
    assert resid <= (1.0 - tve) * energy + 1e-9 * energy
