"""Tests for the optional strict pointwise bound (DPZ extension)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.metrics import max_abs_error
from repro.core.compressor import DPZCompressor
from repro.errors import ConfigError


def bound_of(data, rel):
    return rel * float(data.max() - data.min())


class TestMaxErrorContract:
    @pytest.mark.parametrize("rel", [1e-2, 1e-3, 1e-4])
    def test_bound_holds_smooth(self, smooth_2d, rel):
        cfg = replace(repro.DPZ_L.with_tve_nines(3), max_error=rel)
        blob = DPZCompressor(cfg).compress(smooth_2d)
        recon = DPZCompressor.decompress(blob)
        assert max_abs_error(smooth_2d, recon) <= \
            bound_of(smooth_2d, rel) * (1 + 1e-6)

    def test_bound_holds_on_white_noise(self, rough_1d):
        """The hardest case: most points need correction."""
        rel = 1e-3
        cfg = replace(repro.DPZ_L.with_tve_nines(2), max_error=rel)
        blob, st = DPZCompressor(cfg).compress_with_stats(rough_1d)
        recon = DPZCompressor.decompress(blob)
        assert max_abs_error(rough_1d, recon) <= \
            bound_of(rough_1d, rel) * (1 + 1e-6)
        assert st.correction_fraction > 0.1  # corrections really fired

    def test_no_bound_means_no_corrections(self, smooth_2d):
        _, st = DPZCompressor(repro.DPZ_L).compress_with_stats(smooth_2d)
        assert st.correction_fraction == 0.0

    def test_corrections_cost_bytes(self, rough_1d):
        plain = DPZCompressor(repro.DPZ_L.with_tve_nines(2)).compress(
            rough_1d)
        cfg = replace(repro.DPZ_L.with_tve_nines(2), max_error=1e-3)
        bounded = DPZCompressor(cfg).compress(rough_1d)
        assert len(bounded) > len(plain)

    def test_loose_bound_few_corrections(self, smooth_2d):
        cfg = replace(repro.DPZ_S.with_tve_nines(6), max_error=5e-2)
        _, st = DPZCompressor(cfg).compress_with_stats(smooth_2d)
        assert st.correction_fraction < 0.01

    def test_stage_psnr_still_ordered(self, smooth_2d):
        cfg = replace(repro.DPZ_L.with_tve_nines(3), max_error=1e-3)
        _, st = DPZCompressor(cfg).compress_with_stats(smooth_2d,
                                                       stage_psnr=True)
        # psnr_final includes corrections, so it may exceed stage12.
        assert st.psnr_final is not None and st.psnr_stage12 is not None

    def test_invalid_max_error_rejected(self):
        with pytest.raises(ConfigError):
            replace(repro.DPZ_L, max_error=0.0)

    @given(st.integers(0, 2 ** 32), st.sampled_from([1e-2, 1e-3]))
    @settings(max_examples=15)
    def test_bound_property(self, seed, rel):
        rng = np.random.default_rng(seed)
        data = (np.cumsum(rng.normal(size=600)).reshape(20, 30)
                + 0.3 * rng.normal(size=(20, 30))).astype(np.float32)
        cfg = replace(repro.DPZ_L.with_tve_nines(3), max_error=rel)
        blob = DPZCompressor(cfg).compress(data)
        recon = DPZCompressor.decompress(blob)
        assert max_abs_error(data, recon) <= \
            bound_of(data, rel) * (1 + 1e-5)
