"""Tests for progressive (truncated-k) decompression."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis.metrics import psnr
from repro.core.compressor import DPZCompressor
from repro.core.stream import deserialize
from repro.errors import DataShapeError


@pytest.fixture
def archive_blob(smooth_2d):
    return DPZCompressor(repro.DPZ_S.with_tve_nines(6)).compress(smooth_2d)


def test_quality_monotone_in_k(smooth_2d, archive_blob):
    full_k = deserialize(archive_blob).k
    ks = sorted({1, max(1, full_k // 4), max(1, full_k // 2), full_k})
    psnrs = [psnr(smooth_2d, DPZCompressor.decompress(archive_blob, k=k))
             for k in ks]
    for a, b in zip(psnrs, psnrs[1:]):
        assert b >= a - 0.5  # information-ordered components


def test_full_k_matches_plain_decode(smooth_2d, archive_blob):
    full_k = deserialize(archive_blob).k
    plain = DPZCompressor.decompress(archive_blob)
    full = DPZCompressor.decompress(archive_blob, k=full_k)
    np.testing.assert_array_equal(plain, full)


def test_partial_decode_shape_dtype(smooth_2d, archive_blob):
    out = DPZCompressor.decompress(archive_blob, k=1)
    assert out.shape == smooth_2d.shape
    assert out.dtype == smooth_2d.dtype


def test_k_bounds_validated(archive_blob):
    full_k = deserialize(archive_blob).k
    with pytest.raises(DataShapeError):
        DPZCompressor.decompress(archive_blob, k=0)
    with pytest.raises(DataShapeError):
        DPZCompressor.decompress(archive_blob, k=full_k + 1)


def test_k1_is_dominant_trend(smooth_2d, archive_blob):
    """One component already reconstructs the field's gross structure."""
    out = DPZCompressor.decompress(archive_blob, k=1)
    assert psnr(smooth_2d, out) > 10.0
    # Correlation with the original stays high.
    a = smooth_2d.astype(np.float64).reshape(-1)
    b = out.astype(np.float64).reshape(-1)
    corr = np.corrcoef(a, b)[0, 1]
    assert corr > 0.7


def test_partial_decode_skips_corrections(smooth_2d):
    from dataclasses import replace

    cfg = replace(repro.DPZ_L.with_tve_nines(3), max_error=1e-3)
    blob = DPZCompressor(cfg).compress(smooth_2d)
    full_k = deserialize(blob).k
    if full_k > 1:
        out = DPZCompressor.decompress(blob, k=max(1, full_k - 1))
        assert out.shape == smooth_2d.shape
