"""Tests for stage 3: the symmetric uniform quantizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.quantize import dequantize_scores, quantize_scores
from repro.errors import ConfigError, DataShapeError


class TestBound:
    def test_in_range_error_bounded(self, rng):
        scores = rng.normal(scale=0.05, size=(100, 8))
        p, bins = 1e-3, 255
        q = quantize_scores(scores, p, bins, outlier_dtype=np.float64)
        out = dequantize_scores(q)
        half = p * bins
        in_range = np.abs(scores) <= half
        assert np.max(np.abs(out[in_range] - scores[in_range])) <= p + 1e-15

    def test_outliers_roundtrip_exactly_in_f64(self, rng):
        scores = rng.normal(scale=10.0, size=500)
        q = quantize_scores(scores, 1e-3, 255, outlier_dtype=np.float64)
        out = dequantize_scores(q)
        outliers = np.abs(scores) > 1e-3 * 255
        np.testing.assert_array_equal(out[outliers], scores[outliers])

    def test_outliers_f32_precision(self, rng):
        scores = rng.normal(scale=10.0, size=500)
        q = quantize_scores(scores, 1e-3, 255)  # default float32
        out = dequantize_scores(q)
        outliers = np.abs(scores) > 1e-3 * 255
        np.testing.assert_allclose(out[outliers], scores[outliers],
                                   rtol=1e-6)

    def test_boundary_values_stay_bounded(self):
        p, bins = 1e-2, 11
        half = p * bins
        scores = np.array([-half, -half + 1e-9, 0.0, half - 1e-9, half])
        q = quantize_scores(scores, p, bins)
        out = dequantize_scores(q)
        assert np.max(np.abs(out - scores)) <= p + 1e-12


class TestCodes:
    def test_zero_maps_to_middle_bin(self):
        q = quantize_scores(np.zeros(4), 1e-3, 255)
        assert np.all(q.indices == 127)
        np.testing.assert_allclose(dequantize_scores(q), 0.0, atol=1e-12)

    def test_escape_code_marks_outliers(self, rng):
        scores = np.array([0.0, 100.0, -100.0, 0.3])  # half-range 0.255
        q = quantize_scores(scores, 1e-3, 255)
        assert q.escape_code == 255
        np.testing.assert_array_equal(q.indices == 255,
                                      [False, True, True, True])
        np.testing.assert_allclose(q.outliers, [100.0, -100.0, 0.3],
                                   rtol=1e-6)

    def test_index_dtype_by_bins(self):
        assert quantize_scores(np.zeros(3), 1e-3, 255).indices.dtype == \
            np.uint8
        assert quantize_scores(np.zeros(3), 1e-4, 65535).indices.dtype == \
            np.uint16

    def test_too_many_bins_rejected(self):
        with pytest.raises(ConfigError):
            quantize_scores(np.zeros(3), 1e-3, 70000)

    def test_outlier_fraction(self, rng):
        scores = np.concatenate([np.zeros(90), np.full(10, 1e6)])
        q = quantize_scores(scores, 1e-3, 255)
        assert np.isclose(q.outlier_fraction, 0.1)

    def test_shape_restored(self, rng):
        scores = rng.normal(scale=0.01, size=(7, 9))
        out = dequantize_scores(quantize_scores(scores, 1e-3, 255))
        assert out.shape == (7, 9)


class TestValidation:
    def test_nonpositive_p_rejected(self):
        with pytest.raises(ConfigError):
            quantize_scores(np.zeros(3), 0.0, 255)

    def test_bad_bins_rejected(self):
        with pytest.raises(ConfigError):
            quantize_scores(np.zeros(3), 1e-3, 0)

    def test_outlier_count_mismatch_detected(self, rng):
        q = quantize_scores(np.array([0.0, 1e9]), 1e-3, 255)
        q.outliers = np.zeros(0, dtype=np.float32)
        with pytest.raises(DataShapeError):
            dequantize_scores(q)


@given(st.integers(0, 2 ** 32),
       st.sampled_from([(1e-3, 255), (1e-4, 65535)]))
def test_error_bound_property(seed, scheme):
    """Paper invariant 4: every in-range value reconstructs within P."""
    p, bins = scheme
    rng = np.random.default_rng(seed)
    scores = rng.normal(scale=rng.uniform(1e-4, 1.0), size=256)
    q = quantize_scores(scores, p, bins, outlier_dtype=np.float64)
    out = dequantize_scores(q)
    assert np.max(np.abs(out - scores)) <= p + 1e-15
