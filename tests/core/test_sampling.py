"""Tests for the sampling strategy (Alg. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sampling import (
    STAGE3_CR_RANGE,
    ZLIB_CR_ESTIMATE,
    SamplingReport,
    _pick_subsets,
    sampling_probe,
)
from repro.errors import DataShapeError
from repro.transforms.pca import PCA


def correlated_features(rng, n=600, m=20, rank=3, noise=1e-3):
    basis = rng.normal(size=(rank, m))
    weights = np.array([10.0, 3.0, 1.0])[:rank]
    return rng.normal(size=(n, rank)) * weights @ basis \
        + noise * rng.normal(size=(n, m))


class TestPickSubsets:
    def test_default_first_middle_last(self):
        assert _pick_subsets(10, 3) == [0, 5, 9]

    def test_all_when_t_ge_s(self):
        assert _pick_subsets(4, 6) == [0, 1, 2, 3]

    def test_t_one(self):
        assert _pick_subsets(10, 1) == [0]

    def test_t_larger_than_three(self):
        picks = _pick_subsets(10, 5)
        assert len(picks) == 5
        assert {0, 5, 9} <= set(picks)


class TestProbe:
    def test_k_estimate_close_to_full_pca(self, rng):
        X = correlated_features(rng)
        report = sampling_probe(X, tve=0.999)
        k_full = PCA(center=False).fit(X).components_for_tve(0.999)
        assert abs(report.k_estimate - k_full) <= max(2, k_full)

    def test_high_linearity_not_flagged(self, rng):
        X = correlated_features(rng, noise=1e-4)
        report = sampling_probe(X, sampling_rate=0.3)
        assert not report.low_linearity
        assert report.vif_mean >= 5.0

    def test_white_noise_flagged_low_linearity(self, rng):
        X = rng.normal(size=(600, 20))
        report = sampling_probe(X, sampling_rate=0.3)
        assert report.low_linearity
        assert report.vif_mean < 5.0

    def test_cr_range_formula(self, rng):
        """CR prediction = score bytes shrunk by the stage factors plus
        the basis overhead (which the paper's bare formula omits)."""
        X = correlated_features(rng)
        n, m = X.shape
        report = sampling_probe(X)
        k = report.k_estimate
        score = n * k * 4.0
        basis = (k * m * 4.0 + m * 8.0) / 1.3
        expect_low = (n * m * 4.0) / (
            score / (STAGE3_CR_RANGE[0] * ZLIB_CR_ESTIMATE) + basis)
        assert np.isclose(report.cr_low, expect_low)
        assert report.cr_high > report.cr_low
        assert report.cr_range == (report.cr_low, report.cr_high)

    def test_refinement_beats_seed_on_noisy_subsets(self, rng):
        """With few samples per subset, the seed overshoots; the
        refined estimate must stay close to the full-PCA k."""
        X = correlated_features(rng, n=400, m=80, rank=3, noise=1e-4)
        report = sampling_probe(X, tve=0.999, subsets=10)
        k_full = PCA(center=False).fit(X).components_for_tve(0.999)
        assert abs(report.k_estimate - k_full) <= 2
        assert report.k_seed >= report.k_estimate

    def test_subset_ks_length(self, rng):
        X = correlated_features(rng)
        report = sampling_probe(X, subsets=10, picks=3)
        assert len(report.subset_ks) == 3

    def test_more_subsets_allowed(self, rng):
        X = correlated_features(rng, n=900)
        report = sampling_probe(X, subsets=5, picks=5)
        assert len(report.subset_ks) == 5

    def test_non_2d_rejected(self, rng):
        with pytest.raises(DataShapeError):
            sampling_probe(rng.normal(size=100))

    def test_too_few_samples_rejected(self, rng):
        with pytest.raises(DataShapeError):
            sampling_probe(rng.normal(size=(10, 5)), subsets=10)

    def test_report_is_frozen(self, rng):
        report = sampling_probe(correlated_features(rng))
        assert isinstance(report, SamplingReport)
        with pytest.raises(Exception):
            report.k_estimate = 99  # type: ignore[misc]
