"""Tests for the DPZ container format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stream import DPZArchive, deserialize, serialize
from repro.errors import FormatError


def make_archive(rng, standardized=False, outliers=5):
    m, n, k = 12, 30, 4
    return DPZArchive(
        shape=(18, 20), dtype_tag="f4", m_blocks=m, n_points=n, k=k,
        p=1e-3, n_bins=255, index_bytes=1, standardized=standardized,
        norm_offset=-3.5, norm_scale=7.25, score_scale=1.0,
        outlier_dtype_tag="f4",
        components=rng.normal(size=(k, m)).astype(np.float32),
        mean=rng.normal(size=m),
        scale=np.abs(rng.normal(size=m)) + 0.1 if standardized else None,
        indices=rng.integers(0, 256, n * k).astype(np.uint8),
        outliers=rng.normal(size=outliers).astype(np.float32),
    )


def fix_escapes(archive):
    """Make the escape-code count match the outlier stream."""
    idx = archive.indices.copy()
    idx[idx == 255] = 0
    idx[: archive.outliers.size] = 255
    archive.indices = idx
    return archive


def test_roundtrip_plain(rng):
    a = fix_escapes(make_archive(rng))
    blob, sizes = serialize(a)
    b = deserialize(blob)
    assert b.shape == a.shape
    assert b.k == a.k and b.m_blocks == a.m_blocks
    assert b.p == a.p
    assert (b.norm_offset, b.norm_scale) == (a.norm_offset, a.norm_scale)
    np.testing.assert_array_equal(b.components, a.components)
    np.testing.assert_array_equal(b.mean, a.mean)
    assert b.scale is None
    np.testing.assert_array_equal(b.indices, a.indices)
    np.testing.assert_array_equal(b.outliers, a.outliers)
    assert sizes.total <= len(blob)


def test_roundtrip_standardized(rng):
    a = fix_escapes(make_archive(rng, standardized=True))
    b = deserialize(serialize(a)[0])
    assert b.standardized
    np.testing.assert_array_equal(b.scale, a.scale)


def test_roundtrip_no_outliers(rng):
    a = make_archive(rng, outliers=0)
    a.indices = np.clip(a.indices, 0, 254)
    b = deserialize(serialize(a)[0])
    assert b.outliers.size == 0


def test_uint16_indices(rng):
    a = make_archive(rng, outliers=0)
    a.index_bytes = 2
    a.n_bins = 65535
    a.indices = rng.integers(0, 65535, a.n_points * a.k).astype(np.uint16)
    b = deserialize(serialize(a)[0])
    assert b.indices.dtype == np.uint16
    np.testing.assert_array_equal(b.indices, a.indices)


def test_float64_outliers(rng):
    a = fix_escapes(make_archive(rng))
    a.outlier_dtype_tag = "f8"
    a.outliers = a.outliers.astype(np.float64)
    b = deserialize(serialize(a)[0])
    assert b.outliers.dtype == np.float64


def test_original_dtype_property(rng):
    a = make_archive(rng)
    assert a.original_dtype == np.float32


def test_bad_magic_rejected(rng):
    blob, _ = serialize(fix_escapes(make_archive(rng)))
    with pytest.raises(FormatError):
        deserialize(b"NOPE" + blob[4:])


def test_truncated_blob_rejected(rng):
    blob, _ = serialize(fix_escapes(make_archive(rng)))
    with pytest.raises(FormatError):
        deserialize(blob[: len(blob) // 2])


def test_index_count_mismatch_rejected(rng):
    a = fix_escapes(make_archive(rng))
    a.indices = a.indices[:-1]
    blob, _ = serialize(a)
    with pytest.raises(FormatError):
        deserialize(blob)


def test_section_sizes_reported(rng):
    a = fix_escapes(make_archive(rng))
    _, sizes = serialize(a)
    assert sizes.components > 0
    assert sizes.indices > 0
    assert sizes.meta > 10
