"""Archive bytes must not depend on the host (or input) byte order.

Every serialization site pins an explicit little-endian dtype, so
compressing a byte-swapped (big-endian-typed) copy of an array must
produce *byte-identical* output to compressing the native-order
original, and both archives must decompress on any host.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import dpz_compress, dpz_decompress
from repro.archive import FieldArchive


def _field(dtype):
    rng = np.random.default_rng(7)
    x = rng.normal(size=(6, 32, 32)).astype(dtype)
    return np.ascontiguousarray(x)


def _swapped(data):
    # Same values, opposite byte order in memory (e.g. '>f4' on a
    # little-endian host).
    return data.astype(data.dtype.newbyteorder())


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_dpz_archive_bytes_ignore_input_byte_order(dtype):
    data = _field(dtype)
    blob_native = dpz_compress(data, scheme="l")
    blob_swapped = dpz_compress(_swapped(data), scheme="l")
    assert blob_native == blob_swapped
    out = dpz_decompress(blob_swapped)
    assert out.dtype == np.dtype(dtype)
    np.testing.assert_array_equal(out, dpz_decompress(blob_native))


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_raw_codec_bytes_ignore_input_byte_order(dtype):
    data = _field(dtype)
    ar_native = FieldArchive()
    ar_native.add("x", data, codec="raw")
    ar_swapped = FieldArchive()
    ar_swapped.add("x", _swapped(data), codec="raw")
    assert ar_native.to_bytes() == ar_swapped.to_bytes()
    out = ar_swapped.get("x")
    assert out.dtype == np.dtype(dtype)
    np.testing.assert_array_equal(out, data)


def test_baseline_codecs_accept_swapped_input():
    data = _field(np.float32)
    for codec, kwargs in [("sz", {"rel_eps": 1e-3}),
                          ("dctz", {}), ("zfp", {"tolerance": 1e-3})]:
        ar_native = FieldArchive()
        ar_native.add("x", data, codec=codec, **kwargs)
        ar_swapped = FieldArchive()
        ar_swapped.add("x", _swapped(data), codec=codec, **kwargs)
        assert ar_native.to_bytes() == ar_swapped.to_bytes(), codec
        out = ar_swapped.get("x")
        assert out.dtype == np.float32
