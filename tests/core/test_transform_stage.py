"""Tests for stage 1b: blockwise DCT."""

from __future__ import annotations

import numpy as np

from repro.core.transform_stage import forward_dct_blocks, inverse_dct_blocks
from repro.transforms.dct import dct1d


def test_matches_rowwise_dct(rng):
    blocks = rng.normal(size=(10, 64))
    np.testing.assert_allclose(forward_dct_blocks(blocks),
                               dct1d(blocks, axis=1), atol=1e-12)


def test_roundtrip(rng):
    blocks = rng.normal(size=(20, 48))
    out = inverse_dct_blocks(forward_dct_blocks(blocks))
    np.testing.assert_allclose(out, blocks, atol=1e-10)


def test_frobenius_norm_preserved(rng):
    blocks = rng.normal(size=(16, 100))
    coeffs = forward_dct_blocks(blocks)
    assert np.isclose(np.linalg.norm(coeffs), np.linalg.norm(blocks))


def test_parallel_matches_serial(rng):
    blocks = rng.normal(size=(256, 64))
    serial = forward_dct_blocks(blocks, n_jobs=1)
    parallel = forward_dct_blocks(blocks, n_jobs=4)
    np.testing.assert_allclose(parallel, serial, atol=1e-12)


def test_parallel_inverse_roundtrip(rng):
    blocks = rng.normal(size=(300, 32))
    coeffs = forward_dct_blocks(blocks, n_jobs=3)
    out = inverse_dct_blocks(coeffs, n_jobs=3)
    np.testing.assert_allclose(out, blocks, atol=1e-10)


def test_small_input_stays_serial(rng):
    # Just exercises the fallback path; correctness is the assertion.
    blocks = rng.normal(size=(4, 16))
    np.testing.assert_allclose(
        inverse_dct_blocks(forward_dct_blocks(blocks, n_jobs=8), n_jobs=8),
        blocks, atol=1e-10,
    )
