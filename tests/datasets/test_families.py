"""Tests for the three synthetic dataset families.

These assert the *statistical contracts* the experiments rely on --
value ranges, dimensionality, determinism, and the compressibility
ordering that makes the paper's tables reproducible -- not exact pixel
values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import climate, cosmology, turbulence
from repro.errors import DataShapeError


class TestTurbulence:
    def test_isotropic_shape_and_dtype(self):
        f = turbulence.isotropic((16, 16, 16))
        assert f.shape == (16, 16, 16) and f.dtype == np.float32

    def test_isotropic_zero_mean_unit_scale(self):
        f = turbulence.isotropic((32, 32, 32))
        assert abs(float(f.mean())) < 0.2
        assert 0.5 < float(f.std()) < 2.0

    def test_isotropic_deterministic(self):
        a = turbulence.isotropic((16, 16, 16), seed=5)
        b = turbulence.isotropic((16, 16, 16), seed=5)
        np.testing.assert_array_equal(a, b)

    def test_isotropic_seed_changes_field(self):
        a = turbulence.isotropic((16, 16, 16), seed=1)
        b = turbulence.isotropic((16, 16, 16), seed=2)
        assert not np.array_equal(a, b)

    def test_channel_mean_profile_increases_from_wall(self):
        f = turbulence.channel((32, 32, 32))
        profile = np.asarray(f).mean(axis=(0, 2))
        # Velocity at the wall < velocity at the centerline.
        assert profile[0] < profile[len(profile) // 2]
        assert profile[-1] < profile[len(profile) // 2]

    def test_rejects_non_3d(self):
        with pytest.raises(DataShapeError):
            turbulence.isotropic((16, 16))
        with pytest.raises(DataShapeError):
            turbulence.channel((2, 2, 2))


class TestClimate:
    @pytest.mark.parametrize("gen", [climate.cldhgh, climate.cldlow,
                                     climate.freqsh])
    def test_bounded_fields_in_unit_interval(self, gen):
        f = gen((64, 128))
        assert float(f.min()) >= 0.0 and float(f.max()) <= 1.0

    def test_phis_nonnegative_with_realistic_peak(self):
        f = climate.phis((64, 128))
        assert float(f.min()) >= 0.0
        assert 1e4 < float(f.max()) <= 6e4

    def test_fldsc_flux_range(self):
        f = climate.fldsc((64, 128))
        assert 0.0 < float(f.min()) < float(f.max()) < 600.0

    def test_fldsc_zonal_gradient(self):
        """Poleward rows must carry less flux than equatorial rows."""
        f = np.asarray(climate.fldsc((64, 128)), dtype=np.float64)
        assert f[0].mean() < f[32].mean()
        assert f[-1].mean() < f[32].mean()

    def test_all_deterministic(self):
        for gen in (climate.cldhgh, climate.cldlow, climate.phis,
                    climate.freqsh, climate.fldsc):
            np.testing.assert_array_equal(gen((32, 64)), gen((32, 64)))

    def test_rejects_bad_shapes(self):
        with pytest.raises(DataShapeError):
            climate.cldhgh((64,))
        with pytest.raises(DataShapeError):
            climate.phis((4, 64))


class TestCosmology:
    def test_positions_within_box(self):
        x = cosmology.hacc_x(4096)
        assert float(x.min()) >= 0.0
        assert float(x.max()) <= cosmology.BOX_SIZE

    def test_positions_are_quasi_sorted(self):
        """Zel'dovich positions follow the Lagrangian ramp: strong
        rank correlation with index order."""
        x = np.asarray(cosmology.hacc_x(8192), dtype=np.float64)
        idx = np.arange(x.size)
        mask = (x > 10) & (x < cosmology.BOX_SIZE - 10)  # skip wraps
        corr = np.corrcoef(idx[mask], x[mask])[0, 1]
        assert corr > 0.99

    def test_velocities_dispersion_dominated(self):
        vx = np.asarray(cosmology.hacc_vx(8192), dtype=np.float64)
        assert 200.0 < vx.std() < 450.0
        assert abs(vx.mean()) < 50.0

    def test_vx_nearly_white(self):
        """Lag-1 autocorrelation must be small: this is what gives
        HACC-vx its low VIF / poor compressibility."""
        vx = np.asarray(cosmology.hacc_vx(16384), dtype=np.float64)
        v0 = vx - vx.mean()
        r1 = np.dot(v0[:-1], v0[1:]) / np.dot(v0, v0)
        assert abs(r1) < 0.2

    def test_minimum_size_enforced(self):
        with pytest.raises(DataShapeError):
            cosmology.hacc_x(10)

    def test_deterministic(self):
        np.testing.assert_array_equal(cosmology.hacc_vx(1024),
                                      cosmology.hacc_vx(1024))
