"""Tests for the Gaussian-random-field engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.grf import (
    exp_spectrum_field,
    gaussian_random_field,
    power_law_field,
    radial_wavenumber,
)
from repro.errors import ConfigError, DataShapeError


class TestRadialWavenumber:
    def test_shape_preserved(self):
        assert radial_wavenumber((8, 16)).shape == (8, 16)

    def test_dc_is_zero(self):
        k = radial_wavenumber((8, 8, 8))
        assert k[0, 0, 0] == 0.0

    def test_nyquist_magnitude(self):
        k = radial_wavenumber((8,))
        assert np.isclose(k[4], 0.5)

    def test_empty_shape_rejected(self):
        with pytest.raises(DataShapeError):
            radial_wavenumber(())


class TestGaussianRandomField:
    def test_mean_and_std_honored(self, rng):
        f = gaussian_random_field((64, 64), lambda k: np.exp(-k), rng,
                                  mean=3.0, std=0.5)
        assert np.isclose(f.mean(), 3.0, atol=1e-9)
        assert np.isclose(f.std(), 0.5, atol=1e-9)

    def test_reproducible_with_seed(self):
        a = gaussian_random_field((32, 32), lambda k: np.exp(-k),
                                  np.random.default_rng(7))
        b = gaussian_random_field((32, 32), lambda k: np.exp(-k),
                                  np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_negative_spectrum_rejected(self, rng):
        with pytest.raises(ConfigError):
            gaussian_random_field((16,), lambda k: k - 1.0, rng)

    def test_shape_changing_spectrum_rejected(self, rng):
        with pytest.raises(DataShapeError):
            gaussian_random_field((16,), lambda k: np.ones(3), rng)

    def test_smooth_spectrum_gives_smooth_field(self, rng):
        smooth = gaussian_random_field((256,), lambda k: np.exp(-k / 0.01),
                                       rng)
        rough = gaussian_random_field((256,), lambda k: np.ones_like(k),
                                      np.random.default_rng(9))
        # Smoothness proxy: energy in first differences.
        assert np.std(np.diff(smooth)) < np.std(np.diff(rough))

    def test_1d_and_3d_shapes(self, rng):
        assert gaussian_random_field((100,), lambda k: np.exp(-k),
                                     rng).shape == (100,)
        assert gaussian_random_field(
            (8, 8, 8), lambda k: np.exp(-k), rng
        ).shape == (8, 8, 8)


class TestSpectrumFamilies:
    def test_power_law_positive_slope_rejected(self, rng):
        with pytest.raises(ConfigError):
            power_law_field((16,), 1.0, rng)

    def test_power_law_steeper_is_smoother(self):
        a = power_law_field((512,), -1.0, np.random.default_rng(1))
        b = power_law_field((512,), -4.0, np.random.default_rng(1))
        assert np.std(np.diff(b)) < np.std(np.diff(a))

    def test_exp_spectrum_k0_controls_smoothness(self):
        a = exp_spectrum_field((512,), 0.2, np.random.default_rng(2))
        b = exp_spectrum_field((512,), 0.01, np.random.default_rng(2))
        assert np.std(np.diff(b)) < np.std(np.diff(a))

    def test_exp_spectrum_invalid_k0(self, rng):
        with pytest.raises(ConfigError):
            exp_spectrum_field((16,), 0.0, rng)

    def test_spectral_slope_measured(self):
        """The realized periodogram should follow the requested slope."""
        n = 4096
        f = power_law_field((n,), -2.0, np.random.default_rng(3))
        spec = np.abs(np.fft.rfft(f)) ** 2
        freqs = np.fft.rfftfreq(n)
        band = (freqs > 0.02) & (freqs < 0.3)
        slope = np.polyfit(np.log(freqs[band]), np.log(spec[band]), 1)[0]
        assert -3.0 < slope < -1.0
