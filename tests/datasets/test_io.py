"""Tests for raw/npy dataset I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.io import load_f32, load_field, save_f32, save_field
from repro.errors import DataShapeError, FormatError


def test_f32_roundtrip(tmp_path, rng):
    data = rng.normal(size=(10, 20)).astype(np.float32)
    path = tmp_path / "field.f32"
    save_f32(path, data)
    out = load_f32(path, (10, 20))
    np.testing.assert_array_equal(out, data)


def test_f32_flat_load(tmp_path, rng):
    data = rng.normal(size=50).astype(np.float32)
    path = tmp_path / "x.f32"
    save_f32(path, data)
    out = load_f32(path)
    assert out.shape == (50,)
    np.testing.assert_array_equal(out, data)


def test_f32_wrong_shape_rejected(tmp_path):
    path = tmp_path / "y.f32"
    save_f32(path, np.zeros(10, dtype=np.float32))
    with pytest.raises(DataShapeError):
        load_f32(path, (3, 4))


def test_f32_casts_doubles(tmp_path):
    path = tmp_path / "d.f32"
    save_f32(path, np.arange(4, dtype=np.float64))
    assert load_f32(path).dtype == np.float32


def test_npy_roundtrip(tmp_path, rng):
    data = rng.normal(size=(4, 5)).astype(np.float64)
    path = tmp_path / "a.npy"
    save_field(path, data)
    out = load_field(path)
    assert out.dtype == np.float64
    np.testing.assert_array_equal(out, data)


def test_extension_dispatch(tmp_path, rng):
    data = rng.normal(size=8).astype(np.float32)
    for ext in (".f32", ".dat", ".bin"):
        p = tmp_path / f"f{ext}"
        save_field(p, data)
        np.testing.assert_array_equal(load_field(p), data)


def test_unknown_extension_rejected(tmp_path):
    with pytest.raises(FormatError):
        save_field(tmp_path / "x.txt", np.zeros(3))
    with pytest.raises(FormatError):
        load_field(tmp_path / "x.txt")
