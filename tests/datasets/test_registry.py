"""Tests for the Table-I dataset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.registry import (
    SIZES,
    all_dataset_names,
    clear_cache,
    get_dataset,
    get_spec,
)
from repro.errors import ConfigError


def test_nine_datasets_registered():
    names = all_dataset_names()
    assert len(names) == 9
    assert "Isotropic" in names and "HACC-vx" in names


def test_case_insensitive_lookup():
    assert get_spec("fldsc").name == "FLDSC"
    assert get_spec("HACC-X").name == "HACC-x"


def test_unknown_name_rejected():
    with pytest.raises(ConfigError):
        get_spec("NOPE")


def test_spec_shapes_consistent():
    for name in all_dataset_names():
        spec = get_spec(name)
        assert len(spec.small_shape) == spec.ndim
        assert len(spec.full_shape) == spec.ndim
        assert np.prod(spec.full_shape) > np.prod(spec.small_shape)


def test_invalid_size_preset_rejected():
    with pytest.raises(ConfigError):
        get_spec("FLDSC").shape("huge")
    assert SIZES == ("small", "full")


def test_generated_shape_matches_spec():
    data = get_dataset("CLDHGH", "small")
    assert data.shape == get_spec("CLDHGH").small_shape
    assert data.dtype == np.float32


def test_cache_returns_same_instance():
    a = get_dataset("FREQSH", "small")
    b = get_dataset("FREQSH", "small")
    assert a is b


def test_clear_cache_regenerates():
    a = get_dataset("FREQSH", "small")
    clear_cache()
    b = get_dataset("FREQSH", "small")
    assert a is not b
    np.testing.assert_array_equal(a, b)  # deterministic generators


def test_full_size_matches_paper_dimensions():
    assert get_spec("Isotropic").full_shape == (128, 128, 128)
    assert get_spec("CLDHGH").full_shape == (1800, 3600)
    assert get_spec("HACC-x").full_shape == (2 ** 21,)
