"""Unit tests for the cross-module call graph (symbol table,
resolution, worker reachability).

Each test builds a tiny in-memory project from FileContext objects
with ``module=`` overrides, then asserts on the resolved edges --
the exact substrate the DPZ8xx rules stand on.
"""

from __future__ import annotations

import textwrap

from repro.devtools.lint.callgraph import build_project
from repro.devtools.lint.engine import FileContext


def _ctx(module: str, source: str) -> FileContext:
    return FileContext(f"<test:{module}>", textwrap.dedent(source),
                       module=module)


def _project(**modules: str):
    return build_project([_ctx(m, src) for m, src in modules.items()])


# -- direct and imported calls -----------------------------------------------

def test_same_module_call_edge():
    p = _project(**{"repro.a": """
        def helper():
            return 1

        def caller():
            return helper()
        """})
    assert p.callees("repro.a.caller") == {"repro.a.helper"}


def test_from_import_resolves_cross_module():
    p = _project(**{
        "repro.a": """
            def f():
                return 1
            """,
        "repro.b": """
            from repro.a import f

            def g():
                return f()
            """,
    })
    assert "repro.a.f" in p.callees("repro.b.g")


def test_from_import_alias_resolves():
    p = _project(**{
        "repro.a": """
            def f():
                return 1
            """,
        "repro.b": """
            from repro.a import f as renamed

            def g():
                return renamed()
            """,
    })
    assert "repro.a.f" in p.callees("repro.b.g")


def test_module_import_attribute_call_resolves():
    p = _project(**{
        "repro.a": """
            def f():
                return 1
            """,
        "repro.b": """
            import repro.a as mod

            def g():
                return mod.f()
            """,
    })
    assert "repro.a.f" in p.callees("repro.b.g")


def test_reexport_chain_resolves():
    """``from pkg import f`` where pkg/__init__ re-exports it."""
    p = _project(**{
        "repro.pkg.impl": """
            def f():
                return 1
            """,
        "repro.pkg": """
            from repro.pkg.impl import f
            """,
        "repro.b": """
            from repro.pkg import f

            def g():
                return f()
            """,
    })
    assert "repro.pkg.impl.f" in p.callees("repro.b.g")


def test_unresolvable_import_keeps_dotted_label():
    """Out-of-tree imports resolve to their absolute dotted name so
    name-keyed rules (DPZ802) can still match them."""
    p = _project(**{"repro.b": """
        from repro.codecs.registry import register_codec

        def g():
            register_codec("x", None, None)
        """})
    facts = p.facts["repro.b.g"]
    assert any(c.callee == "repro.codecs.registry.register_codec"
               for c in facts.calls)
    # No function of that name exists, so no graph edge.
    assert p.callees("repro.b.g") == frozenset()


# -- methods and classes -----------------------------------------------------

def test_self_method_call_resolves_to_own_class():
    p = _project(**{"repro.a": """
        class Box:
            def inner(self):
                return 1

            def outer(self):
                return self.inner()
        """})
    assert p.callees("repro.a.Box.outer") == {"repro.a.Box.inner"}


def test_instantiate_and_call_method():
    p = _project(**{"repro.a": """
        class Box:
            def work(self):
                return 1

        def use():
            return Box().work()
        """})
    assert "repro.a.Box.work" in p.callees("repro.a.use")


def test_unique_method_name_fallback():
    """A method name defined exactly once resolves through an untyped
    receiver; an ambiguous name does not."""
    p = _project(**{"repro.a": """
        class Only:
            def distinctive(self):
                return 1

        def use(box):
            return box.distinctive()
        """})
    assert "repro.a.Only.distinctive" in p.callees("repro.a.use")


def test_ambiguous_method_name_does_not_resolve():
    p = _project(**{"repro.a": """
        class One:
            def shared(self):
                return 1

        class Two:
            def shared(self):
                return 2

        def use(box):
            return box.shared()
        """})
    assert p.callees("repro.a.use") == frozenset()


def test_decorated_def_still_registers_and_resolves():
    p = _project(**{"repro.a": """
        import functools

        def deco(fn):
            return fn

        @deco
        @functools.lru_cache
        def cached():
            return 1

        def use():
            return cached()
        """})
    assert "repro.a.cached" in p.functions
    assert "repro.a.cached" in p.callees("repro.a.use")


def test_nested_def_scope_chain():
    p = _project(**{"repro.a": """
        def outer():
            def inner():
                return 1

            return inner()
        """})
    assert "repro.a.outer.inner" in p.functions
    assert "repro.a.outer.inner" in p.callees("repro.a.outer")


# -- worker reachability -----------------------------------------------------

def test_parallel_map_seeds_task_and_transitive_callees():
    p = _project(**{"repro.a": """
        from repro.parallel import parallel_map

        def leaf():
            return 1

        def task(item):
            return leaf()

        def driver(items):
            return parallel_map(task, items)
        """})
    assert "repro.a.task" in p.worker_roots
    assert p.is_worker_reachable("repro.a.task")
    assert p.is_worker_reachable("repro.a.leaf")
    assert not p.is_worker_reachable("repro.a.driver")


def test_capture_worker_marks_enclosing_function():
    p = _project(**{"repro.a": """
        from repro.observability.aggregate import capture_worker

        def task(item):
            with capture_worker():
                return item
        """})
    assert p.is_worker_reachable("repro.a.task")


def test_lambda_task_registers_pseudo_function():
    p = _project(**{"repro.a": """
        from repro.parallel import parallel_map

        def driver(items):
            return parallel_map(lambda x: x + 1, items)
        """})
    assert any(".<lambda:" in q for q in p.worker_roots)


def test_summary_counts():
    p = _project(**{"repro.a": """
        from repro.parallel import parallel_map

        def task(item):
            return item

        def driver(items):
            return parallel_map(task, items)
        """})
    s = p.summary()
    assert s["modules"] == 1
    assert s["functions"] == 2
    assert s["worker_roots"] == 1
    assert s["worker_reachable_functions"] == 1


# -- lock and mutation facts -------------------------------------------------

def test_with_lock_records_acquisition_and_guards_mutation():
    p = _project(**{"repro.a": """
        import threading

        _state = {}
        _lock = threading.Lock()

        def write(key, value):
            with _lock:
                _state[key] = value
        """})
    facts = p.facts["repro.a.write"]
    assert [a.lock for a in facts.acquisitions] == ["repro.a._lock"]
    (mut,) = [m for m in facts.mutations if m.kind == "global"]
    assert mut.name == "_state"
    assert mut.guarded


def test_bare_global_mutation_is_unguarded():
    p = _project(**{"repro.a": """
        _state = {}

        def write(key, value):
            _state[key] = value
        """})
    (mut,) = p.facts["repro.a.write"].mutations
    assert mut.kind == "global"
    assert not mut.guarded
