"""DPZ801-804 concurrency rules: per-rule behavior plus the corpus gate.

The corpus test is the acceptance criterion from the issue: every racy
fixture must flag and no clean fixture may, for all four rules.  The
per-rule tests below pin individual behaviors (lock exemptions,
constructor exemptions, suppression comments) with fixtures linted
through the public ``lint_file`` path.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.devtools.lint import lint_file, resolve_selection
from repro.devtools.lint.corpus import CORPUS, corpus_stats, run_fixture


def run_rules(tmp_path, select, source, name="fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    findings, suppressed = lint_file(path, resolve_selection(select))
    return findings, suppressed


# -- the corpus gate ---------------------------------------------------------

@pytest.mark.parametrize("rule_id", sorted(CORPUS))
def test_corpus_racy_fixtures_all_flag(rule_id):
    for fixture in CORPUS[rule_id]:
        if not fixture.racy:
            continue
        findings = run_fixture(rule_id, fixture)
        assert findings, (
            f"{rule_id} corpus fixture {fixture.name!r} is racy but "
            f"produced no finding")


@pytest.mark.parametrize("rule_id", sorted(CORPUS))
def test_corpus_clean_fixtures_never_flag(rule_id):
    for fixture in CORPUS[rule_id]:
        if fixture.racy:
            continue
        findings = run_fixture(rule_id, fixture)
        assert findings == [], (
            f"{rule_id} corpus fixture {fixture.name!r} is clean but "
            f"flagged: " + "; ".join(f.message for f in findings))


def test_corpus_stats_all_pass():
    stats = corpus_stats()
    assert set(stats) == {"DPZ801", "DPZ802", "DPZ803", "DPZ804"}
    for rule_id, entry in stats.items():
        assert entry["pass"] is True, (rule_id, entry)
        assert entry["racy_total"] >= 1
        assert entry["clean_total"] >= 1


# -- DPZ801 ------------------------------------------------------------------

def test_dpz801_flags_unguarded_global_in_task(tmp_path):
    findings, _ = run_rules(tmp_path, "DPZ801", """\
        from repro.parallel import parallel_map

        _hits = {}

        def task(item):
            _hits[item] = 1
            return item

        def run(items):
            return parallel_map(task, items)
        """)
    assert [f.rule for f in findings] == ["DPZ801"]
    assert "_hits" in findings[0].message
    assert "task()" in findings[0].message


def test_dpz801_lock_guard_silences(tmp_path):
    findings, _ = run_rules(tmp_path, "DPZ801", """\
        import threading

        from repro.parallel import parallel_map

        _hits = {}
        _hits_lock = threading.Lock()

        def task(item):
            with _hits_lock:
                _hits[item] = 1
            return item

        def run(items):
            return parallel_map(task, items)
        """)
    assert findings == []


def test_dpz801_suppression_comment(tmp_path):
    findings, suppressed = run_rules(tmp_path, "DPZ801", """\
        from repro.parallel import parallel_map

        _hits = {}

        def task(item):
            _hits[item] = 1  # dpzlint: ignore[DPZ801]
            return item

        def run(items):
            return parallel_map(task, items)
        """)
    assert findings == []
    assert suppressed == 1


def test_dpz801_ignores_non_worker_functions(tmp_path):
    findings, _ = run_rules(tmp_path, "DPZ801", """\
        _hits = {}

        def serial(item):
            _hits[item] = 1
        """)
    assert findings == []


# -- DPZ802 ------------------------------------------------------------------

def test_dpz802_flags_registry_mutation_from_task(tmp_path):
    findings, _ = run_rules(tmp_path, "DPZ802", """\
        from repro.codecs.registry import unregister_codec
        from repro.parallel import parallel_map

        def task(item):
            unregister_codec(item)
            return item

        def run(items):
            return parallel_map(task, items)
        """)
    assert [f.rule for f in findings] == ["DPZ802"]
    assert "unregister_codec" in findings[0].message


def test_dpz802_allows_same_call_outside_worker(tmp_path):
    findings, _ = run_rules(tmp_path, "DPZ802", """\
        from repro.codecs.registry import unregister_codec

        def teardown(name):
            unregister_codec(name)
        """)
    assert findings == []


# -- DPZ803 ------------------------------------------------------------------

def test_dpz803_flags_abba_and_names_both_locks(tmp_path):
    findings, _ = run_rules(tmp_path, "DPZ803", """\
        import threading

        _a = threading.Lock()
        _b = threading.Lock()

        def fwd():
            with _a:
                with _b:
                    return 1

        def rev():
            with _b:
                with _a:
                    return 2
        """)
    assert len(findings) == 1
    assert findings[0].rule == "DPZ803"
    assert "_a" in findings[0].message and "_b" in findings[0].message


def test_dpz803_interprocedural_cycle(tmp_path):
    findings, _ = run_rules(tmp_path, "DPZ803", """\
        import threading

        _a = threading.Lock()
        _b = threading.Lock()

        def take_b():
            with _b:
                return 1

        def fwd():
            with _a:
                return take_b()

        def rev():
            with _b:
                with _a:
                    return 2
        """)
    assert len(findings) == 1


def test_dpz803_consistent_order_is_clean(tmp_path):
    findings, _ = run_rules(tmp_path, "DPZ803", """\
        import threading

        _a = threading.Lock()
        _b = threading.Lock()

        def one():
            with _a:
                with _b:
                    return 1

        def two():
            with _a:
                with _b:
                    return 2
        """)
    assert findings == []


# -- DPZ804 ------------------------------------------------------------------

def test_dpz804_flags_bare_minority_mutation(tmp_path):
    findings, _ = run_rules(tmp_path, "DPZ804", """\
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def drop(self, item):
                with self._lock:
                    self._items.remove(item)

            def reset(self):
                self._items = []
        """)
    assert [f.rule for f in findings] == ["DPZ804"]
    assert "reset()" in findings[0].message
    assert "_items" in findings[0].message


def test_dpz804_ctor_is_exempt(tmp_path):
    findings, _ = run_rules(tmp_path, "DPZ804", """\
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []
                self._items = sorted(self._items)

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def drop(self, item):
                with self._lock:
                    self._items.remove(item)
        """)
    assert findings == []


def test_dpz804_no_majority_no_finding(tmp_path):
    """One guarded site does not establish a guard discipline."""
    findings, _ = run_rules(tmp_path, "DPZ804", """\
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def reset(self):
                self._items = []
        """)
    assert findings == []
