"""The `dpz lint` subcommand: exit codes, JSON schema, and self-check.

The self-check test is the real acceptance gate: the shipped source
tree must lint clean, so every invariant the rules encode is actually
upheld by the code that defines them.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import repro
from repro import cli
from repro.devtools.lint import JSON_VERSION, all_rules, lint_paths

CLEAN_SRC = """\
    # dpzlint: module=repro.codecs.fake
    import numpy as np

    def decode(buf):
        return np.frombuffer(buf, dtype="<f4")
"""

DIRTY_SRC = """\
    # dpzlint: module=repro.codecs.fake
    import numpy as np

    def decode(buf):
        return np.frombuffer(buf, dtype=np.float32)
"""


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", CLEAN_SRC)
    rc = cli.main(["lint", str(path)])
    assert rc == 0
    assert "clean" in capsys.readouterr().out


def test_lint_dirty_file_exits_one(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY_SRC)
    rc = cli.main(["lint", str(path)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "DPZ101" in out
    assert "dirty.py" in out


def test_lint_json_schema(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY_SRC)
    rc = cli.main(["lint", str(path), "--format", "json"])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == JSON_VERSION
    assert doc["tool"] == "dpzlint"
    assert doc["files_checked"] == 1
    assert doc["suppressed"] == 0
    assert doc["counts"] == {"DPZ101": 1}
    assert set(doc["rules"]) == set(all_rules())
    (finding,) = doc["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    assert finding["rule"] == "DPZ101"
    assert finding["path"].endswith("dirty.py")


def test_lint_select_limits_rules(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY_SRC)
    rc = cli.main(["lint", str(path), "--select", "DPZ201"])
    assert rc == 0
    capsys.readouterr()


def test_lint_out_writes_report_file(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY_SRC)
    out_file = tmp_path / "report.json"
    rc = cli.main(["lint", str(path), "--format", "json",
                   "--out", str(out_file)])
    assert rc == 1
    doc = json.loads(out_file.read_text())
    assert doc["counts"] == {"DPZ101": 1}
    capsys.readouterr()


def test_lint_missing_path_is_usage_error(tmp_path, capsys):
    rc = cli.main(["lint", str(tmp_path / "nope")])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_lint_unknown_rule_is_usage_error(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", CLEAN_SRC)
    rc = cli.main(["lint", str(path), "--select", "DPZ999"])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_shipped_tree_lints_clean():
    """`dpz lint src/repro` on the shipped tree must report nothing."""
    src_root = Path(repro.__file__).resolve().parent
    report = lint_paths([str(src_root)])
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )
    assert report.files_checked > 50
