"""The `dpz lint` subcommand: exit codes, JSON schema, and self-check.

The self-check test is the real acceptance gate: the shipped source
tree must lint clean, so every invariant the rules encode is actually
upheld by the code that defines them.
"""

from __future__ import annotations

import json
import os
import textwrap
from pathlib import Path

import repro
from repro import cli
from repro.devtools.lint import (
    JSON_VERSION,
    PARSE_ERROR_ID,
    all_rules,
    lint_paths,
)

CLEAN_SRC = """\
    # dpzlint: module=repro.codecs.fake
    import numpy as np

    def decode(buf):
        return np.frombuffer(buf, dtype="<f4")
"""

DIRTY_SRC = """\
    # dpzlint: module=repro.codecs.fake
    import numpy as np

    def decode(buf):
        return np.frombuffer(buf, dtype=np.float32)
"""


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", CLEAN_SRC)
    rc = cli.main(["lint", str(path)])
    assert rc == 0
    assert "clean" in capsys.readouterr().out


def test_lint_dirty_file_exits_one(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY_SRC)
    rc = cli.main(["lint", str(path)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "DPZ101" in out
    assert "dirty.py" in out


def test_lint_json_schema(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY_SRC)
    rc = cli.main(["lint", str(path), "--format", "json"])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == JSON_VERSION
    assert doc["tool"] == "dpzlint"
    assert doc["files_checked"] == 1
    assert doc["suppressed"] == 0
    assert doc["counts"] == {"DPZ101": 1}
    assert set(doc["rules"]) == set(all_rules())
    (finding,) = doc["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    assert finding["rule"] == "DPZ101"
    assert finding["path"].endswith("dirty.py")


def test_lint_json_v2_call_graph_and_corpus(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", CLEAN_SRC)
    rc = cli.main(["lint", str(path), "--format", "json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 2
    cg = doc["call_graph"]
    assert set(cg) == {"modules", "functions", "edges", "worker_roots",
                       "worker_reachable_functions"}
    assert cg["modules"] == 1
    corpus = doc["fixture_corpus"]
    assert set(corpus) == {"DPZ801", "DPZ802", "DPZ803", "DPZ804"}
    for entry in corpus.values():
        assert entry["pass"] is True
        assert entry["racy_flagged"] == entry["racy_total"]
        assert entry["clean_false_positives"] == 0


def test_lint_json_v1_keeps_frozen_schema(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY_SRC)
    rc = cli.main(["lint", str(path), "--format", "json-v1"])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 1
    assert set(doc) == {"version", "tool", "files_checked", "suppressed",
                        "counts", "rules", "findings"}
    assert doc["counts"] == {"DPZ101": 1}


def test_lint_corpus_skipped_when_not_selected(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", CLEAN_SRC)
    rc = cli.main(["lint", str(path), "--format", "json",
                   "--select", "DPZ101"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["fixture_corpus"] == {}


def test_lint_select_limits_rules(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY_SRC)
    rc = cli.main(["lint", str(path), "--select", "DPZ201"])
    assert rc == 0
    capsys.readouterr()


def test_lint_out_writes_report_file(tmp_path, capsys):
    path = _write(tmp_path, "dirty.py", DIRTY_SRC)
    out_file = tmp_path / "report.json"
    rc = cli.main(["lint", str(path), "--format", "json",
                   "--out", str(out_file)])
    assert rc == 1
    doc = json.loads(out_file.read_text())
    assert doc["counts"] == {"DPZ101": 1}
    capsys.readouterr()


def test_lint_broken_symlink_reports_dpz000_and_continues(tmp_path, capsys):
    """A directory entry that cannot be read must degrade to one DPZ000
    finding, not a traceback, and the remaining files must still lint."""
    _write(tmp_path, "dirty.py", DIRTY_SRC)
    os.symlink(tmp_path / "does-not-exist.py", tmp_path / "dead.py")
    rc = cli.main(["lint", str(tmp_path)])
    assert rc == 1
    out = capsys.readouterr().out
    assert PARSE_ERROR_ID in out
    assert "could not read file" in out
    assert "DPZ101" in out  # the readable sibling still linted


def test_lint_unreadable_file_via_api(tmp_path):
    os.symlink(tmp_path / "gone.py", tmp_path / "dead.py")
    report = lint_paths([str(tmp_path)])
    assert [f.rule for f in report.findings] == [PARSE_ERROR_ID]
    assert report.files_checked == 1


def test_lint_missing_path_is_usage_error(tmp_path, capsys):
    rc = cli.main(["lint", str(tmp_path / "nope")])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_lint_unknown_rule_is_usage_error(tmp_path, capsys):
    path = _write(tmp_path, "clean.py", CLEAN_SRC)
    rc = cli.main(["lint", str(path), "--select", "DPZ999"])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_shipped_tree_lints_clean():
    """`dpz lint src/repro` on the shipped tree must report nothing."""
    src_root = Path(repro.__file__).resolve().parent
    report = lint_paths([str(src_root)])
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )
    assert report.files_checked > 50
