"""Per-rule fixtures for the dpzlint rule set.

Each rule gets (at least) one bad fixture that must produce a finding
and one clean twin that must not.  Fixtures are written to tmp_path and
opt into layer-scoped rules with a ``# dpzlint: module=...`` directive,
so the tests exercise exactly the code paths real repo files hit.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.devtools.lint import PARSE_ERROR_ID, lint_file, resolve_selection


def run_rule(tmp_path, rule_id, source, name="fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    findings, suppressed = lint_file(path, resolve_selection(rule_id))
    return findings, suppressed


# -- DPZ101: serialization endianness ----------------------------------------

BAD_101 = """\
    # dpzlint: module=repro.codecs.fake
    import numpy as np

    def decode(buf):
        return np.frombuffer(buf, dtype=np.float32)
"""

CLEAN_101 = """\
    # dpzlint: module=repro.codecs.fake
    import numpy as np

    def decode(buf):
        return np.frombuffer(buf, dtype="<f4")
"""


def test_dpz101_flags_native_dtype(tmp_path):
    findings, _ = run_rule(tmp_path, "DPZ101", BAD_101)
    assert [f.rule for f in findings] == ["DPZ101"]
    assert "np.float32" in findings[0].message


def test_dpz101_accepts_little_endian_string(tmp_path):
    findings, _ = run_rule(tmp_path, "DPZ101", CLEAN_101)
    assert findings == []


def test_dpz101_flags_missing_dtype_on_zlib_compress(tmp_path):
    src = """\
        # dpzlint: module=repro.core.fake
        import numpy as np
        from repro.codecs.zlibc import zlib_compress

        def pack(arr):
            return zlib_compress(np.ascontiguousarray(arr))
    """
    findings, _ = run_rule(tmp_path, "DPZ101", src)
    assert len(findings) == 1
    assert "zlib_compress" in findings[0].message


def test_dpz101_flags_tobytes_on_native_astype(tmp_path):
    src = """\
        # dpzlint: module=repro.core.fake
        import numpy as np

        def pack(arr):
            return arr.astype(np.float64).tobytes()
    """
    findings, _ = run_rule(tmp_path, "DPZ101", src)
    assert len(findings) == 1


def test_dpz101_ignores_single_byte_dtypes(tmp_path):
    src = """\
        # dpzlint: module=repro.codecs.fake
        import numpy as np

        def decode(buf):
            return np.frombuffer(buf, dtype=np.uint8)
    """
    findings, _ = run_rule(tmp_path, "DPZ101", src)
    assert findings == []


def test_dpz101_scoped_to_boundary_layers(tmp_path):
    # Same bad code, but in a module outside the serialization layers.
    src = BAD_101.replace("repro.codecs.fake", "repro.analysis.fake")
    findings, _ = run_rule(tmp_path, "DPZ101", src)
    assert findings == []


# -- DPZ201: seeded randomness -----------------------------------------------


def test_dpz201_flags_unseeded_default_rng(tmp_path):
    src = """\
        import numpy as np

        def sample():
            return np.random.default_rng().normal()
    """
    findings, _ = run_rule(tmp_path, "DPZ201", src)
    assert [f.rule for f in findings] == ["DPZ201"]


def test_dpz201_accepts_seeded_rng(tmp_path):
    src = """\
        import numpy as np

        def sample(seed=0):
            return np.random.default_rng(seed).normal()
    """
    findings, _ = run_rule(tmp_path, "DPZ201", src)
    assert findings == []


def test_dpz201_flags_wall_clock_seed(tmp_path):
    src = """\
        import time
        import numpy as np

        def sample():
            return np.random.default_rng(int(time.time()))
    """
    findings, _ = run_rule(tmp_path, "DPZ201", src)
    assert len(findings) == 1


def test_dpz201_flags_legacy_global_state(tmp_path):
    src = """\
        import numpy as np

        def sample():
            np.random.seed(42)
            return np.random.rand()
    """
    findings, _ = run_rule(tmp_path, "DPZ201", src)
    assert findings


# -- DPZ301/302: exception taxonomy ------------------------------------------


def test_dpz301_flags_foreign_raise_in_codec_layer(tmp_path):
    src = """\
        # dpzlint: module=repro.codecs.fake

        def decode(buf):
            raise ValueError("boom")
    """
    findings, _ = run_rule(tmp_path, "DPZ301", src)
    assert [f.rule for f in findings] == ["DPZ301"]


def test_dpz301_accepts_taxonomy_raise(tmp_path):
    src = """\
        # dpzlint: module=repro.codecs.fake
        from repro.errors import CodecError

        def decode(buf):
            raise CodecError("boom")
    """
    findings, _ = run_rule(tmp_path, "DPZ301", src)
    assert findings == []


def test_dpz301_allows_bare_reraise(tmp_path):
    src = """\
        # dpzlint: module=repro.codecs.fake
        from repro.errors import CodecError

        def decode(buf):
            try:
                return buf[0]
            except IndexError:
                raise
    """
    findings, _ = run_rule(tmp_path, "DPZ301", src)
    assert findings == []


def test_dpz302_flags_bare_and_broad_except(tmp_path):
    src = """\
        # dpzlint: module=repro.core.fake

        def load(path):
            try:
                return open(path)
            except Exception:
                return None

        def load2(path):
            try:
                return open(path)
            except:
                return None
    """
    findings, _ = run_rule(tmp_path, "DPZ302", src)
    assert [f.rule for f in findings] == ["DPZ302", "DPZ302"]


def test_dpz302_allows_cli_top_level_handler(tmp_path):
    src = """\
        # dpzlint: module=repro.cli

        def main(argv=None):
            try:
                return 0
            except Exception:
                return 2
    """
    findings, _ = run_rule(tmp_path, "DPZ302", src)
    assert findings == []


# -- DPZ401: metric catalog ---------------------------------------------------


def test_dpz401_flags_uncataloged_metric_name(tmp_path):
    src = """\
        # dpzlint: module=repro.core.fake
        from repro.observability import counter_inc

        def work():
            counter_inc("dpz.compress.rnus")
    """
    findings, _ = run_rule(tmp_path, "DPZ401", src)
    assert [f.rule for f in findings] == ["DPZ401"]
    assert "dpz.compress.rnus" in findings[0].message


def test_dpz401_accepts_cataloged_name_and_prefix(tmp_path):
    src = """\
        # dpzlint: module=repro.core.fake
        from repro.observability import counter_inc, gauge_set

        def work(key):
            counter_inc("dpz.compress.runs")
            gauge_set("quality." + key, 1.0)
    """
    findings, _ = run_rule(tmp_path, "DPZ401", src)
    assert findings == []


def test_dpz401_flags_unregistered_dynamic_prefix(tmp_path):
    src = """\
        # dpzlint: module=repro.core.fake
        from repro.observability import gauge_set

        def work(key):
            gauge_set("mystery." + key, 1.0)
    """
    findings, _ = run_rule(tmp_path, "DPZ401", src)
    assert len(findings) == 1
    assert "mystery." in findings[0].message


# -- DPZ501: span coverage ----------------------------------------------------


def test_dpz501_flags_untraced_entry_point(tmp_path):
    src = """\
        # dpzlint: module=repro.baselines.fake

        class FakeCompressor:
            def compress(self, data):
                return bytes(data)
    """
    findings, _ = run_rule(tmp_path, "DPZ501", src)
    assert [f.rule for f in findings] == ["DPZ501"]


def test_dpz501_accepts_span_and_delegation(tmp_path):
    src = """\
        # dpzlint: module=repro.baselines.fake
        from repro.observability import span

        class FakeCompressor:
            def compress(self, data):
                with span("fake.compress"):
                    return bytes(data)

        def fake_compress(data):
            return FakeCompressor().compress(data)
    """
    findings, _ = run_rule(tmp_path, "DPZ501", src)
    assert findings == []


def test_dpz501_helper_call_is_not_delegation(tmp_path):
    # zlib_compress matches the `*_compress` naming pattern but is NOT
    # a traced entry point; calling it must not satisfy the rule.
    src = """\
        # dpzlint: module=repro.baselines.fake
        from repro.codecs.zlibc import zlib_compress

        class FakeCompressor:
            def compress(self, data):
                return zlib_compress(data)
    """
    findings, _ = run_rule(tmp_path, "DPZ501", src)
    assert [f.rule for f in findings] == ["DPZ501"]


# -- DPZ601: mutable defaults -------------------------------------------------


def test_dpz601_flags_mutable_defaults(tmp_path):
    src = """\
        def f(items=[]):
            return items

        def g(*, table={}):
            return table
    """
    findings, _ = run_rule(tmp_path, "DPZ601", src)
    assert [f.rule for f in findings] == ["DPZ601", "DPZ601"]


def test_dpz601_accepts_none_default(tmp_path):
    src = """\
        def f(items=None):
            return items or []
    """
    findings, _ = run_rule(tmp_path, "DPZ601", src)
    assert findings == []


# -- DPZ701: public API docstrings -------------------------------------------


def test_dpz701_flags_undocumented_public_def(tmp_path):
    src = """\
        # dpzlint: module=repro.api

        def dpz_probe(data):
            return data
    """
    findings, _ = run_rule(tmp_path, "DPZ701", src)
    assert [f.rule for f in findings] == ["DPZ701"]


def test_dpz701_ignores_private_and_documented(tmp_path):
    src = '''\
        # dpzlint: module=repro.api

        def dpz_probe(data):
            """Documented."""
            return data

        def _helper(data):
            return data
    '''
    findings, _ = run_rule(tmp_path, "DPZ701", src)
    assert findings == []


# -- engine behaviour ---------------------------------------------------------


def test_suppression_comment_silences_one_rule(tmp_path):
    src = """\
        # dpzlint: module=repro.codecs.fake
        import numpy as np

        def decode(buf):
            return np.frombuffer(buf, dtype=np.float32)  # dpzlint: ignore[DPZ101]
    """
    findings, suppressed = run_rule(tmp_path, "DPZ101", src)
    assert findings == []
    assert suppressed == 1


def test_blanket_ignore_silences_every_rule_on_line(tmp_path):
    src = """\
        # dpzlint: module=repro.codecs.fake
        import numpy as np

        def decode(buf):
            return np.frombuffer(buf, dtype=np.float32)  # dpzlint: ignore
    """
    findings, suppressed = run_rule(tmp_path, "DPZ101", src)
    assert findings == []
    assert suppressed == 1


def test_suppression_for_other_rule_does_not_apply(tmp_path):
    src = """\
        # dpzlint: module=repro.codecs.fake
        import numpy as np

        def decode(buf):
            return np.frombuffer(buf, dtype=np.float32)  # dpzlint: ignore[DPZ999]
    """
    findings, suppressed = run_rule(tmp_path, "DPZ101", src)
    assert len(findings) == 1
    assert suppressed == 0


def test_skip_file_directive(tmp_path):
    src = """\
        # dpzlint: skip-file
        # dpzlint: module=repro.codecs.fake
        import numpy as np

        def decode(buf):
            return np.frombuffer(buf, dtype=np.float32)
    """
    findings, suppressed = run_rule(tmp_path, "DPZ101", src)
    assert findings == []
    assert suppressed == 0


def test_parse_error_becomes_dpz000_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n")
    findings, _ = lint_file(path)
    assert [f.rule for f in findings] == [PARSE_ERROR_ID]


def test_unknown_rule_selection_raises(tmp_path):
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        resolve_selection("DPZ999")
