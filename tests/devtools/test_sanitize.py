"""Runtime thread sanitizer: checked-lock semantics and the
thread-hammer over the real concurrency-bearing singletons.

The locks inside ``ChunkCache`` and ``MetricsRegistry`` are created in
``__init__``, so setting ``DPZ_SANITIZE=1`` via monkeypatch *before*
constructing an instance is enough to get instrumented locks in-process
-- no subprocess needed.  (Module-level locks sample the flag at
import; the CI sanitizer job covers those by exporting the variable at
process start.)
"""

from __future__ import annotations

import threading

import pytest

from repro.devtools import sanitize
from repro.devtools.sanitize import (
    CheckedLock,
    CheckedRLock,
    checked_lock,
    checked_rlock,
    held_locks,
    lock_order_edges,
    reset_lock_order,
)
from repro.errors import SanitizerError


@pytest.fixture(autouse=True)
def _clean_order_graph():
    reset_lock_order()
    yield
    reset_lock_order()


@pytest.fixture()
def sanitized(monkeypatch):
    monkeypatch.setenv("DPZ_SANITIZE", "1")


# -- factory gating ----------------------------------------------------------

def test_factories_return_plain_locks_when_disabled(monkeypatch):
    monkeypatch.delenv("DPZ_SANITIZE", raising=False)
    assert not isinstance(checked_lock("x"), CheckedLock)
    assert not isinstance(checked_rlock("x"), CheckedRLock)


def test_factories_return_checked_locks_when_enabled(sanitized):
    assert isinstance(checked_lock("x"), CheckedLock)
    assert isinstance(checked_rlock("x"), CheckedRLock)


def test_zero_is_disabled(monkeypatch):
    monkeypatch.setenv("DPZ_SANITIZE", "0")
    assert not sanitize.enabled()


# -- ownership ---------------------------------------------------------------

def test_self_deadlock_raises():
    lock = CheckedLock("t.self")
    with lock:
        with pytest.raises(SanitizerError, match="self-deadlock"):
            lock.acquire()


def test_rlock_reenters():
    lock = CheckedRLock("t.rlock")
    with lock:
        with lock:
            assert lock.locked()
    assert not lock.locked()


def test_non_owner_release_raises():
    lock = CheckedLock("t.owner")
    lock.acquire()
    errors: list[str] = []

    def intruder() -> None:
        try:
            lock.release()
        except SanitizerError as exc:
            errors.append(str(exc))

    t = threading.Thread(target=intruder)
    t.start()
    t.join()
    lock.release()
    assert errors and "does not hold it" in errors[0]


def test_release_unheld_raises():
    lock = CheckedLock("t.unheld")
    with pytest.raises(SanitizerError):
        lock.release()


def test_held_stack_tracks_nesting():
    a, b = CheckedLock("t.a"), CheckedLock("t.b")
    with a:
        with b:
            assert held_locks() == ("t.a", "t.b")
        assert held_locks() == ("t.a",)
    assert held_locks() == ()


# -- lock ordering -----------------------------------------------------------

def test_consistent_order_records_edge():
    a, b = CheckedLock("t.first", ), CheckedLock("t.second")
    with a:
        with b:
            pass
    assert "t.second" in lock_order_edges().get("t.first", frozenset())


def test_inversion_raises():
    a, b = CheckedLock("t.inv.a"), CheckedLock("t.inv.b")
    with a:
        with b:
            pass
    with b:
        with pytest.raises(SanitizerError, match="lock-order inversion"):
            a.acquire()


def test_transitive_inversion_raises():
    a, b, c = (CheckedLock("t.tr.a"), CheckedLock("t.tr.b"),
               CheckedLock("t.tr.c"))
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with pytest.raises(SanitizerError, match="lock-order inversion"):
            a.acquire()


def test_same_name_nesting_allowed():
    """Two instances of one lock class may nest (hand-over-hand)."""
    a1, a2 = CheckedLock("t.same"), CheckedLock("t.same")
    with a1:
        with a2:
            pass


def test_reset_isolates():
    a, b = CheckedLock("t.rs.a"), CheckedLock("t.rs.b")
    with a:
        with b:
            pass
    reset_lock_order()
    with b:
        with a:  # would be an inversion without the reset
            pass


# -- thread hammer over the real singletons ----------------------------------

N_THREADS = 8
N_OPS = 200


def _hammer(target, n_threads: int = N_THREADS) -> None:
    """Run ``target(i)`` from many threads; re-raise the first error."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def body(i: int) -> None:
        barrier.wait()
        try:
            target(i)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def test_hammer_chunk_cache_under_sanitizer(sanitized):
    from repro.store.cache import ChunkCache

    cache = ChunkCache(max_bytes=1 << 16)
    assert isinstance(cache._lock, CheckedLock)

    def ops(i: int) -> None:
        for k in range(N_OPS):
            key = ("field", (i + k) % 32, "raw")
            cache.put(key, b"x" * 64)
            cache.get(key)
            if k % 50 == 0:
                cache.invalidate_field("field")
            len(cache)

    _hammer(ops)
    cache.clear()


def test_hammer_metrics_registry_under_sanitizer(sanitized):
    from repro.observability.metrics import MetricsRegistry

    reg = MetricsRegistry()
    assert isinstance(reg._lock, CheckedLock)

    def ops(i: int) -> None:
        for k in range(N_OPS):
            reg.counter(f"hammer.c{k % 4}").add(1)
            reg.gauge("hammer.g").set(float(k))
            reg.histogram("hammer.h").observe(k * 0.001)
            if k % 64 == 0:
                reg.snapshot()

    _hammer(ops)
    snap = reg.snapshot()
    assert snap["counters"]["hammer.c0"] >= N_THREADS


def test_hammer_cache_and_registry_interleaved(sanitized):
    """Both singletons together: the cross-class lock-order graph the
    hammer builds must stay acyclic (no SanitizerError)."""
    from repro.observability.metrics import MetricsRegistry
    from repro.store.cache import ChunkCache

    cache = ChunkCache(max_bytes=1 << 14)
    reg = MetricsRegistry()

    def ops(i: int) -> None:
        for k in range(N_OPS):
            cache.put((i, k % 16), bytes(32))
            reg.counter("hammer.mixed").add(1)
            cache.get((i, k % 16))

    _hammer(ops)
