"""Smoke + shape tests for the experiment harnesses.

Heavy sweeps (fig6 full panel, full Table III) run in the benchmark
suite; here each harness runs on its smallest configuration and we
assert the paper-shaped structural claims.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    common,
    fig1,
    fig2,
    fig3,
    fig4,
    fig7,
    fig9,
    fig10,
    sampling_eval,
    table1,
    table2,
    table3,
)


class TestCommon:
    def test_format_table_alignment(self):
        text = common.format_table(["a", "bb"], [[1, 22], [333, 4]],
                                   title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to equal width

    def test_adapters_roundtrip(self, smooth_2d):
        nb, rec = common.run_dpz(smooth_2d, common.dpz_config("l", 3))
        assert nb > 0 and rec.shape == smooth_2d.shape
        nb, rec = common.run_sz(smooth_2d, 1e-3)
        assert nb > 0 and rec.shape == smooth_2d.shape
        nb, rec = common.run_zfp(smooth_2d, 8.0)
        assert nb > 0 and rec.shape == smooth_2d.shape


class TestFig1:
    def test_dct_concentrates_energy(self):
        res = fig1.run("FLDSC")
        assert res.frac_coeffs_for_99pct_energy < \
            res.frac_values_for_99pct_energy / 5
        assert "Fig. 1" in fig1.format_report(res)


class TestFig2:
    def test_leading_component_dominates(self):
        res = fig2.run("FLDSC", ranks=(1, 2, 30))
        assert res.score_std[1] > res.score_std[2] > res.score_std[30]
        assert res.sample_blocks.shape[0] <= 7
        assert "spread ratio" in fig2.format_report(res)


class TestFig3:
    def test_headline_claims(self):
        res = fig3.run("FLDSC", n_eval=8)
        # ~1% of features carry >90% of the information (paper claim).
        assert res.features_for_info(0.90, "dct") <= 0.02
        assert res.features_for_info(0.90, "pca") <= 0.02
        # PSNR curves are nondecreasing in kept features.
        assert np.all(np.diff(res.psnr_pca) >= -1.0)
        assert "Fig. 3" in fig3.format_report(res)


class TestFig4:
    def test_ordering_claims(self):
        res = fig4.run("FLDSC")
        order = res.ordering()
        # The paper's key claims: two-stage dct_on_pca is the worst;
        # pca_on_dct sits in the top group (it ties spatial PCA exactly
        # when both are linear-algebraically equivalent).
        assert order[-1] == "dct_on_pca"
        best_mse = res.errors[order[0]].mse
        assert res.errors["pca_on_dct"].mse <= best_mse * 1.05
        assert set(res.error_maps) == set(fig4.PIPELINES)


class TestTables:
    def test_table1_rows(self):
        rows = table1.run()
        assert len(rows) == 9
        assert "Table I" in table1.format_report(rows)

    def test_table2_single_dataset(self):
        cells = table2.run(datasets=("FLDSC",))
        assert len(cells) == 4  # 2 schemes x 2 fits
        polyn = {c.scheme: c for c in cells if c.fit == "polyn"}
        oned = {c.scheme: c for c in cells if c.fit == "1d"}
        # Polynomial fitting keeps more components -> lower CR.
        for s in ("l", "s"):
            assert polyn[s].k >= oned[s].k
        assert "knee-point" in table2.format_report(cells)

    def test_table3_stage_factors(self):
        cells = table3.run(datasets=("FLDSC",), nines_sweep=(3, 5))
        by = {(c.scheme, c.nines): c for c in cells}
        # Stage 1&2 CR falls as TVE tightens.
        assert by[("l", 3)].cr_stage12 >= by[("l", 5)].cr_stage12
        # DPZ-s stage 3 is ~2x (16-bit indices).
        assert 1.8 <= by[("s", 3)].cr_stage3 <= 2.2
        # DPZ-l stage 3 lands in the paper's 2-4x band.
        assert 2.0 <= by[("l", 5)].cr_stage3 <= 4.2
        assert "stage1&2" in table3.format_report(cells)


class TestFig9:
    def test_stage_times_present(self):
        res = fig9.run(datasets=("FLDSC",), nines=4)
        assert len(res) == 1
        times = res[0].times
        assert times["pca"] > 0
        assert abs(sum(res[0].fraction(s) for s in times) - 1.0) < 1e-9
        assert "Fig. 9" in fig9.format_report(res)


class TestFig10:
    def test_linearity_separation(self):
        rows = fig10.run(datasets=("HACC-vx", "PHIS"), rates=(0.025,))
        stats = {r.dataset: r.stats for r in rows}
        assert stats["HACC-vx"]["median"] < 5.0
        assert stats["PHIS"]["median"] > 5.0
        assert "VIF" in fig10.format_report(rows)


class TestFig7:
    def test_matched_points(self):
        res = fig7.run("FLDSC", cr_target=10.0, psnr_target=30.0,
                       nines=(3, 5), sz_eps=(1e-2, 1e-3),
                       zfp_rates=(4.0,))
        assert {p.compressor for p in res.matched_cr} == \
            {"DPZ-s", "SZ", "ZFP"}
        assert "matched" in fig7.format_report(res).lower()

    def test_pgm_export(self, tmp_path, smooth_2d):
        path = tmp_path / "img.pgm"
        fig7.write_pgm(str(path), smooth_2d)
        raw = path.read_bytes()
        assert raw.startswith(b"P5 ")
        assert len(raw) > smooth_2d.size


class TestSamplingEval:
    def test_trials_and_hit_rate(self):
        trials = sampling_eval.run(datasets=("FLDSC",), nines_sweep=(3,),
                                   subset_counts=(10,))
        assert len(trials) == 1
        rate = sampling_eval.hit_rate(trials, 10)
        assert 0.0 <= rate <= 1.0
        assert "hit rate" in sampling_eval.format_report(trials)
