"""Unit tests for the fig6 (rate-distortion) and fig8 (timing)
experiment modules, on minimal sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import fig6, fig8


class TestFig6Module:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run("FLDSC", nines=(3, 5), sz_eps=(1e-3,),
                        zfp_rates=(4.0,))

    def test_all_compressors_present(self, result):
        assert set(result.curves) == {"DPZ-l", "DPZ-s", "SZ", "ZFP"}

    def test_point_counts_match_sweeps(self, result):
        assert len(result.curves["DPZ-l"]) == 2
        assert len(result.curves["SZ"]) == 1
        assert len(result.curves["ZFP"]) == 1

    def test_bitrate_cr_consistency(self, result):
        for pts in result.curves.values():
            for p in pts:
                assert np.isclose(p.bitrate, 32.0 / p.cr)

    def test_dpz_psnr_grows_with_tve(self, result):
        pts = result.curves["DPZ-s"]
        assert pts[1].psnr >= pts[0].psnr

    def test_zfp_min_rate_filter_1d(self):
        """1-D data: rates below the per-block header cost are dropped."""
        res = fig6.run("HACC-vx", nines=(3,), sz_eps=(1e-3,),
                       zfp_rates=(1.0, 2.0, 8.0))
        rates = [float(str(p.param)) for p in res.curves["ZFP"]]
        assert 1.0 not in rates and 2.0 not in rates
        assert 8.0 in rates

    def test_format_report(self, result):
        text = fig6.format_report(result)
        assert "FLDSC" in text and "rate-distortion" in text

    def test_run_all_subset(self):
        results = fig6.run_all(datasets=("FLDSC",), nines=(3,),
                               sz_eps=(1e-2,), zfp_rates=(4.0,))
        assert len(results) == 1


class TestFig8Module:
    def test_timing_points(self):
        points = fig8.run("FLDSC")
        comps = {p.compressor for p in points}
        assert {"DPZ-l", "DPZ-s", "SZ", "ZFP"} <= comps
        for p in points:
            assert p.compress_seconds > 0 and p.decompress_seconds > 0
            assert np.isfinite(p.psnr)

    def test_throughput_helper(self):
        p = fig8.TimingPoint("X", "p", 2.0, 50.0, 0.5, 0.25)
        comp, dec = p.throughput_mb_s(1_000_000)
        assert np.isclose(comp, 2.0) and np.isclose(dec, 4.0)

    def test_sampling_speedup_returns_pair(self):
        t_plain, t_samp = fig8.sampling_speedup("FLDSC", repeats=1)
        assert t_plain > 0 and t_samp > 0

    def test_format_report(self):
        points = [fig8.TimingPoint("DPZ-l", "3-nine", 10.0, 45.0,
                                   0.1, 0.02)]
        text = fig8.format_report(points)
        assert "comp ms" in text and "DPZ-l" in text
