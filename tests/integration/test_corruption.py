"""Failure-injection tests: corrupt containers must fail loudly.

A decompressor that silently returns garbage on a flipped bit is worse
than one that crashes; these tests flip/truncate bytes across all three
formats and assert the library either raises a :class:`ReproError`
subclass or -- when the corruption hits only payload values, which no
checksum-free format can detect -- returns an array of the right shape
rather than crashing unpredictably.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import ReproError


@pytest.fixture
def field(rng):
    return np.cumsum(rng.normal(size=(32, 48)), axis=1).astype(np.float32)


def _flip(blob: bytes, pos: int, mask: int = 0xFF) -> bytes:
    out = bytearray(blob)
    out[pos] ^= mask
    return bytes(out)


class TestTruncation:
    def test_dpz_truncated(self, field):
        blob = repro.dpz_compress(field)
        for frac in (0.1, 0.5, 0.9):
            cut = blob[: int(len(blob) * frac)]
            with pytest.raises(ReproError):
                repro.dpz_decompress(cut)

    def test_sz_truncated(self, field):
        blob = repro.sz_compress(field, eps=1e-3)
        for frac in (0.2, 0.7):
            with pytest.raises(ReproError):
                repro.sz_decompress(blob[: int(len(blob) * frac)])

    def test_zfp_truncated_header(self, field):
        blob = repro.zfp_compress(field, rate=8)
        with pytest.raises(ReproError):
            repro.zfp_decompress(blob[:6])

    def test_empty_inputs(self):
        for fn in (repro.dpz_decompress, repro.sz_decompress,
                   repro.zfp_decompress):
            with pytest.raises((ReproError, Exception)):
                fn(b"")


class TestHeaderCorruption:
    def test_magic_flips_rejected(self, field):
        for compress, decompress in (
            (lambda d: repro.dpz_compress(d), repro.dpz_decompress),
            (lambda d: repro.sz_compress(d, eps=1e-3), repro.sz_decompress),
            (lambda d: repro.zfp_compress(d, rate=8), repro.zfp_decompress),
        ):
            blob = compress(field)
            for pos in range(4):
                with pytest.raises(ReproError):
                    decompress(_flip(blob, pos))

    def test_version_bump_rejected(self, field):
        blob = repro.dpz_compress(field)
        with pytest.raises(ReproError):
            repro.dpz_decompress(_flip(blob, 4, 0x7F))


class TestRandomByteFuzz:
    @pytest.mark.parametrize("fmt", ["dpz", "sz"])
    def test_random_flips_never_hang_or_segv(self, fmt, field, rng):
        """Flip 30 random bytes (one at a time): each decode either
        raises a ReproError or yields a right-shaped array."""
        if fmt == "dpz":
            blob = repro.dpz_compress(field)
            decompress = repro.dpz_decompress
        else:
            blob = repro.sz_compress(field, eps=1e-3)
            decompress = repro.sz_decompress
        for pos in rng.integers(0, len(blob), size=30):
            corrupted = _flip(blob, int(pos))
            try:
                out = decompress(corrupted)
            except ReproError:
                continue
            except (ValueError, OverflowError, MemoryError):
                # zlib payload corruption can surface as container
                # value errors before our validators see it; acceptable
                # as long as it is an exception, not garbage state.
                continue
            assert out.shape == field.shape
