"""Cross-module integration tests: the full pipelines on real(istic)
synthetic datasets, including the paper's qualitative claims."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

import repro
from repro.analysis.metrics import max_abs_error, psnr
from repro.datasets.registry import get_dataset


class TestDPZOnDatasetSuite:
    @pytest.mark.parametrize("name", ["FLDSC", "CLDHGH", "Isotropic",
                                      "HACC-x"])
    def test_roundtrip_quality(self, name):
        data = get_dataset(name, "small")
        blob = repro.dpz_compress(data, scheme="s", tve_nines=5)
        recon = repro.dpz_decompress(blob)
        assert psnr(data, recon) > 45.0
        assert data.nbytes / len(blob) > 1.0

    def test_smooth_fields_beat_baselines_at_medium_accuracy(self):
        """The paper's headline: on smooth 2-D data at medium accuracy
        DPZ's CR exceeds SZ's and ZFP's at comparable PSNR."""
        data = get_dataset("FLDSC", "small")
        dpz_blob = repro.dpz_compress(data, scheme="l", tve_nines=4)
        dpz_psnr = psnr(data, repro.dpz_decompress(dpz_blob))
        dpz_cr = data.nbytes / len(dpz_blob)

        # Configure SZ/ZFP to at-least-comparable PSNR and compare CR.
        sz_blob = repro.sz_compress(data, rel_eps=3e-4)
        sz_psnr = psnr(data, repro.sz_decompress(sz_blob))
        sz_cr = data.nbytes / len(sz_blob)

        zfp_blob = repro.zfp_compress(data, rate=8)
        zfp_psnr = psnr(data, repro.zfp_decompress(zfp_blob))
        zfp_cr = data.nbytes / len(zfp_blob)

        assert dpz_psnr > 45.0
        assert sz_psnr >= dpz_psnr - 15.0  # roughly comparable band
        assert dpz_cr > sz_cr
        assert dpz_cr > zfp_cr

    def test_hacc_vx_is_the_hardest(self):
        """VIF-flagged low-linearity data compresses worst (paper V-C1)."""
        crs = {}
        for name in ("FLDSC", "PHIS", "HACC-vx"):
            data = get_dataset(name, "small")
            blob = repro.dpz_compress(data, scheme="l", tve_nines=5)
            crs[name] = data.nbytes / len(blob)
        assert crs["HACC-vx"] < crs["FLDSC"]
        assert crs["HACC-vx"] < crs["PHIS"]

    def test_probe_flags_match_compression_outcomes(self):
        hard = repro.dpz_probe(get_dataset("HACC-vx", "small"))
        easy = repro.dpz_probe(get_dataset("PHIS", "small"))
        assert hard.low_linearity and not easy.low_linearity
        assert easy.cr_high > hard.cr_high


class TestBaselineContracts:
    @pytest.mark.parametrize("name", ["FLDSC", "Isotropic", "HACC-vx"])
    def test_sz_bound_on_suite(self, name):
        data = get_dataset(name, "small")
        rel = 1e-3
        recon = repro.sz_decompress(repro.sz_compress(data, rel_eps=rel))
        bound = rel * float(data.max() - data.min())
        assert max_abs_error(data, recon) <= bound * (1 + 1e-5)

    def test_zfp_accuracy_on_suite(self):
        data = get_dataset("CLDHGH", "small")
        tol = 1e-3
        recon = repro.zfp_decompress(repro.zfp_compress(data,
                                                        tolerance=tol))
        assert max_abs_error(data, recon) <= tol

    def test_zfp_fixed_rate_size_exact(self):
        data = get_dataset("Isotropic", "small")
        blob = repro.zfp_compress(data, rate=8)
        # Bit budget: 8 bits/value over the padded grid, plus header.
        padded = 64 * 64 * 64
        expected_payload = padded  # 8 bits/value = 1 byte/value
        assert abs(len(blob) - expected_payload) < 0.02 * expected_payload


class TestErrorComposition:
    def test_dpz_error_decomposes_orthogonally(self, rng):
        """DESIGN.md invariant 5: MSE ~ truncation + quantization, since
        the in-between stages are orthonormal."""
        data = get_dataset("FLDSC", "small")
        cfg = replace(repro.DPZ_S.with_tve_nines(4),
                      store_outliers_f64=True)
        blob, st = repro.DPZCompressor(cfg).compress_with_stats(
            data, stage_psnr=True)
        # Quantization can only lower PSNR, and at 4-nines the
        # truncation error dominates the strict quantizer's: small delta.
        assert st.psnr_stage12 >= st.psnr_final - 1e-9
        assert st.delta_psnr < 3.0

    def test_container_psnr_reproducible(self):
        data = get_dataset("CLDHGH", "small")
        blob = repro.dpz_compress(data, scheme="s", tve_nines=5)
        r1 = repro.dpz_decompress(blob)
        r2 = repro.dpz_decompress(blob)
        np.testing.assert_array_equal(r1, r2)
