"""Property-based end-to-end tests over random field families.

Hypothesis drives structured random inputs through all three
compressors, asserting the contracts that must hold for *any* input:
shape/dtype restoration, SZ's error bound, ZFP's tolerance, and DPZ's
graceful behaviour across field roughness.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.metrics import max_abs_error, psnr


@st.composite
def random_field(draw):
    """A structured random 1-D/2-D field: smooth base + scaled noise."""
    ndim = draw(st.integers(1, 2))
    if ndim == 1:
        shape = (draw(st.integers(64, 600)),)
    else:
        shape = (draw(st.integers(10, 40)), draw(st.integers(10, 40)))
    seed = draw(st.integers(0, 2 ** 32 - 1))
    roughness = draw(st.floats(0.0, 1.0))
    scale = draw(st.sampled_from([1e-3, 1.0, 1e4]))
    rng = np.random.default_rng(seed)
    smooth = np.cumsum(rng.normal(size=shape), axis=-1)
    noise = rng.normal(size=shape)
    field = (smooth + roughness * noise) * scale
    return field.astype(np.float32)


@given(random_field(), st.sampled_from([1e-2, 1e-3, 1e-4]))
@settings(max_examples=25)
def test_sz_bound_universal(field, rel_eps):
    blob = repro.sz_compress(field, rel_eps=rel_eps)
    recon = repro.sz_decompress(blob)
    assert recon.shape == field.shape and recon.dtype == field.dtype
    bound = rel_eps * float(field.max() - field.min())
    if bound == 0.0:
        bound = rel_eps
    assert max_abs_error(field, recon) <= bound * (1 + 1e-5)


@given(random_field())
@settings(max_examples=15)
def test_zfp_rate_universal(field):
    rate = 8.0 if field.ndim > 1 else 8.0
    blob = repro.zfp_compress(field, rate=rate)
    recon = repro.zfp_decompress(blob)
    assert recon.shape == field.shape and recon.dtype == field.dtype


@given(random_field())
@settings(max_examples=15)
def test_dpz_roundtrip_universal(field):
    if field.size < 8:
        return
    blob = repro.dpz_compress(field, scheme="s", tve_nines=5)
    recon = repro.dpz_decompress(blob)
    assert recon.shape == field.shape and recon.dtype == field.dtype
    # Range-relative error must track the quantizer/TVE regime: never
    # catastrophic even on the roughest inputs.
    rng_ = float(field.max() - field.min())
    if rng_ > 0:
        assert max_abs_error(field, recon) <= 0.2 * rng_


@given(st.integers(0, 2 ** 32 - 1))
@settings(max_examples=10)
def test_compressor_agreement_on_shared_input(seed):
    """All three compressors at tight settings approximate the same
    data: reconstructions agree with the original, hence pairwise."""
    rng = np.random.default_rng(seed)
    field = np.cumsum(rng.normal(size=(24, 24)), axis=1).astype(np.float32)
    recons = [
        repro.sz_decompress(repro.sz_compress(field, rel_eps=1e-5)),
        repro.zfp_decompress(repro.zfp_compress(field, tolerance=1e-4)),
        repro.dpz_decompress(repro.dpz_compress(field, scheme="s",
                                                tve_nines=8)),
    ]
    for r in recons:
        assert psnr(field, r) > 50.0
