"""Corrupt-input robustness: parsers must fail with FormatError only.

Strategy: build small but fully featured archives (DPZ single-field and
multi-field bundles), then

* truncate at **every** byte boundary -- any strict prefix must raise
  :class:`FormatError` (the container length-prefixes every section, so
  no prefix can parse cleanly), and
* flip bytes at sampled positions -- the parser may reject
  (``FormatError``) or, for payload bits the checksums do not cover,
  still parse; it must never leak ``struct.error`` / ``IndexError`` /
  ``zlib.error`` or any other low-level exception.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.archive import FieldArchive
from repro.codecs.container import pack_sections
from repro.core.compressor import DPZCompressor
from repro.core.config import DPZ_L
from repro.core.stream import deserialize
from repro.errors import FormatError


@pytest.fixture(scope="module")
def dpz_blob():
    rng = np.random.default_rng(4242)
    x = np.linspace(0, 2 * np.pi, 24)
    field = (np.sin(x)[:, None] * np.cos(2 * x)[None, :]
             + 0.01 * rng.standard_normal((24, 24))).astype(np.float32)
    # max_error exercises the correction sections (5-6) too.
    cfg = dataclasses.replace(DPZ_L, max_error=1e-3)
    return DPZCompressor(cfg).compress(field)


@pytest.fixture(scope="module")
def bundle_blob():
    rng = np.random.default_rng(777)
    ar = FieldArchive()
    ar.add("a", rng.standard_normal((12, 12)).astype(np.float32), codec="raw")
    ar.add("b", rng.standard_normal(64).astype(np.float64), codec="raw")
    return ar.to_bytes()


def _boundary_buckets(n: int) -> list[int]:
    """Every truncation point for small blobs; stratified cover for big.

    Always includes the first 64 cut points (header territory), the
    last 64 (tail section), and an even sweep in between, so every
    region of the frame -- magic, version, section-length varints,
    section interiors -- gets cut somewhere.
    """
    if n <= 1024:
        return list(range(n))
    pts = set(range(64)) | set(range(n - 64, n))
    pts |= set(int(i) for i in np.linspace(0, n - 1, 512))
    return sorted(pts)


def test_dpz_truncation_every_boundary(dpz_blob):
    for cut in _boundary_buckets(len(dpz_blob)):
        with pytest.raises(FormatError):
            deserialize(dpz_blob[:cut])


def test_dpz_decompress_rejects_truncation(dpz_blob):
    # The public entry point wraps the same parser.
    for cut in (0, 1, 3, len(dpz_blob) // 2, len(dpz_blob) - 1):
        with pytest.raises(FormatError):
            DPZCompressor.decompress(dpz_blob[:cut])


def test_dpz_byteflip_never_leaks_low_level_errors(dpz_blob):
    rng = np.random.default_rng(31337)
    positions = rng.choice(len(dpz_blob), size=min(256, len(dpz_blob)),
                           replace=False)
    for pos in positions:
        for flip in (0x01, 0x80, 0xFF):
            bad = bytearray(dpz_blob)
            bad[pos] ^= flip
            try:
                deserialize(bytes(bad))
            except FormatError:
                pass  # rejected cleanly -- the contract
            # Benign flips (e.g. in a float that stays finite) may parse.


def test_bundle_truncation_every_boundary(bundle_blob):
    for cut in _boundary_buckets(len(bundle_blob)):
        with pytest.raises(FormatError):
            FieldArchive.from_bytes(bundle_blob[:cut])


def test_bundle_byteflip_never_leaks_low_level_errors(bundle_blob):
    rng = np.random.default_rng(2718)
    positions = rng.choice(len(bundle_blob), size=min(256, len(bundle_blob)),
                           replace=False)
    for pos in positions:
        bad = bytearray(bundle_blob)
        bad[pos] ^= 0xFF
        try:
            ar = FieldArchive.from_bytes(bytes(bad))
            for name in ar.names():  # lazy payloads: force decode too
                try:
                    ar.get(name)
                except FormatError:
                    pass
        except FormatError:
            pass


def test_bundle_malformed_entry_headers():
    magic, version = b"DPZA", 1
    # nlen runs past the section end.
    with pytest.raises(FormatError):
        FieldArchive.from_bytes(pack_sections(magic, version, [b"\x05ab"]))
    # codec tag runs past the section end.
    with pytest.raises(FormatError):
        FieldArchive.from_bytes(
            pack_sections(magic, version, [b"\x01a\x09raw"]))
    # unknown codec name.
    with pytest.raises(FormatError):
        FieldArchive.from_bytes(
            pack_sections(magic, version, [b"\x01a\x03xyz\x00"]))
    # non-UTF8 field name.
    with pytest.raises(FormatError):
        FieldArchive.from_bytes(
            pack_sections(magic, version, [b"\x02\xff\xfe\x03raw\x00"]))


def test_wrong_magic_and_version(dpz_blob, bundle_blob):
    with pytest.raises(FormatError):
        deserialize(b"NOPE" + dpz_blob[4:])
    with pytest.raises(FormatError):
        FieldArchive.from_bytes(b"NOPE" + bundle_blob[4:])
    with pytest.raises(FormatError):
        deserialize(b"")
    with pytest.raises(FormatError):
        FieldArchive.from_bytes(b"")


def test_dpz_wrong_section_count(dpz_blob):
    # A frame with too few sections must be rejected up front.
    from repro.codecs.container import unpack_sections
    sections = unpack_sections(dpz_blob, b"DPZ1", 1)
    with pytest.raises(FormatError):
        deserialize(pack_sections(b"DPZ1", 1, sections[:5]))
