"""Worker-telemetry frames: capture, snapshot, exact parent merge."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.observability import (
    Tracer,
    counter_add,
    gauge_set,
    get_registry,
    merge_frame,
    merge_frames,
    metrics_snapshot,
    observe,
    snapshot_frame,
    use_tracer,
    worker_origin,
)
from repro.observability.aggregate import (
    WORKER_FRAME,
    WORKER_FRAME_VERSION,
    capture_worker,
)
from repro.observability.metrics import MetricsRegistry
from repro.parallel.executor import ParallelConfig, parallel_map


@pytest.fixture(autouse=True)
def _fresh_registry():
    get_registry().clear()
    yield
    get_registry().clear()


def _work(x: int) -> int:
    counter_add("store.chunks.compressed", 1)
    counter_add("store.bytes.decoded", 100 * (x + 1))
    observe("store.chunk.compress.seconds", 0.001 * (x + 1))
    gauge_set("dpz.last.k", float(x))
    return x * 2


def _traced_totals(n_jobs: int, n: int = 16) -> dict:
    get_registry().clear()
    with use_tracer(Tracer()):
        result = parallel_map(_work, list(range(n)),
                              config=ParallelConfig(n_jobs=n_jobs))
    assert result == [x * 2 for x in range(n)]
    return metrics_snapshot()


class TestPoolInvariance:
    def test_counter_totals_invariant_across_n_jobs(self):
        serial = _traced_totals(1)
        for n_jobs in (2, 4):
            pooled = _traced_totals(n_jobs)
            for name in ("store.chunks.compressed", "store.bytes.decoded"):
                assert pooled["counters"][name] == \
                    serial["counters"][name], (name, n_jobs)

    def test_histogram_buckets_match_serial(self):
        serial = _traced_totals(1)
        pooled = _traced_totals(4)
        h_ser = serial["histograms"]["store.chunk.compress.seconds"]
        h_par = pooled["histograms"]["store.chunk.compress.seconds"]
        assert h_par["counts"] == h_ser["counts"]
        assert h_par["count"] == h_ser["count"]
        assert h_par["sum"] == pytest.approx(h_ser["sum"])
        assert h_par["min"] == pytest.approx(h_ser["min"])
        assert h_par["max"] == pytest.approx(h_ser["max"])

    def test_pooled_run_reports_merged_frames(self):
        pooled = _traced_totals(4, n=12)
        assert pooled["counters"]["worker.snapshots.merged"] == 12

    def test_raising_worker_merges_nothing(self):
        def boom(x: int) -> int:
            counter_add("store.chunks.compressed", 1)
            if x == 5:
                raise RuntimeError("chunk 5 is cursed")
            return x

        with use_tracer(Tracer()):
            with pytest.raises(RuntimeError, match="cursed"):
                parallel_map(boom, list(range(8)),
                             config=ParallelConfig(n_jobs=4))
        snap = metrics_snapshot()
        # The raising task shipped no frame; pool.map's fail-fast may
        # also drop later siblings -- but never *invent* emissions.
        assert snap["counters"].get("store.chunks.compressed", 0) < 8

    def test_chunk_spans_carry_worker_origin(self):
        tracer = Tracer()
        get_registry().clear()
        with use_tracer(tracer):
            parallel_map(_work, list(range(8)),
                         config=ParallelConfig(n_jobs=2))
        chunk_spans = [s for s in tracer.spans
                       if s.name == "parallel.chunk"]
        assert len(chunk_spans) == 8
        origins = {s.meta["origin"] for s in chunk_spans}
        assert origins and all(o.startswith("worker.") for o in origins)
        (map_span,) = [s for s in tracer.spans if s.name == "parallel.map"]
        assert map_span.meta["worker_frames"] == 8


class TestFrameProtocol:
    def test_snapshot_frame_shape_and_json_round_trip(self):
        local = MetricsRegistry()
        local.counter("store.chunks.compressed").add(3)
        local.counter("never.incremented")
        local.gauge("dpz.last.k").set(7.0)
        local.histogram("store.chunk.compress.seconds").observe(0.25)
        frame = snapshot_frame(local, origin="worker.9")
        assert frame["frame"] == WORKER_FRAME
        assert frame["version"] == WORKER_FRAME_VERSION
        assert frame["origin"] == "worker.9"
        assert frame["counters"] == {"store.chunks.compressed": 3}
        assert frame["gauges"] == {"dpz.last.k": 7.0}
        hist = frame["histograms"]["store.chunk.compress.seconds"]
        assert hist["count"] == 1 and sum(hist["counts"]) == 1

        # The frame must survive a serialization boundary unchanged.
        wire = json.loads(json.dumps(frame))
        target = MetricsRegistry()
        report = merge_frame(wire, into=target)
        assert report["origin"] == "worker.9"
        assert report["counters"] == 1 and report["histograms"] == 1
        assert report["lossy"] == 0
        assert target.counter("store.chunks.compressed").value == 3
        merged = target.histogram("store.chunk.compress.seconds")
        assert merged.count == 1 and merged.sum == pytest.approx(0.25)

    def test_empty_frame_is_just_the_envelope(self):
        frame = snapshot_frame(MetricsRegistry(), origin="worker.0")
        assert set(frame) == {"frame", "version", "origin"}
        target = MetricsRegistry()
        merge_frame(frame, into=target)
        assert target.counter("worker.snapshots.merged").value == 1

    def test_merge_rejects_foreign_and_future_frames(self):
        with pytest.raises(ValueError, match="not a worker-telemetry"):
            merge_frame({"frame": "something-else", "version": 1})
        with pytest.raises(ValueError, match="version"):
            merge_frame({"frame": WORKER_FRAME, "version": 99})

    def test_bounds_mismatch_degrades_to_lossy_merge(self):
        local = MetricsRegistry()
        local.histogram("x.seconds", lo=1e-3, hi=1e3,
                        buckets_per_decade=2).observe(0.5)
        frame = snapshot_frame(local, origin="worker.1")
        target = MetricsRegistry()
        # Same name, different bounds: exact bucket merge impossible.
        target.histogram("x.seconds", lo=1e-6, hi=1e2,
                         buckets_per_decade=4).observe(0.1)
        report = merge_frame(frame, into=target)
        assert report["lossy"] == 1
        assert target.counter("worker.merge.lossy").value == 1
        merged = target.histogram("x.seconds", lo=1e-6, hi=1e2,
                                  buckets_per_decade=4)
        assert merged.count == 2  # totals exact even when binning is not

    def test_merge_frames_skips_none_entries(self):
        local = MetricsRegistry()
        local.counter("store.chunks.compressed").add(1)
        frame = snapshot_frame(local, origin="worker.0")
        target = MetricsRegistry()
        assert merge_frames([None, frame, None], into=target) == 1
        assert target.counter("store.chunks.compressed").value == 1

    def test_merge_binned_rejects_wrong_bucket_count(self):
        hist = MetricsRegistry().histogram("y.seconds")
        with pytest.raises(ConfigError, match="cannot merge"):
            hist.merge_binned([1, 2, 3], 6, 1.0)

    def test_worker_origin_labels(self):
        import threading

        assert worker_origin().startswith("worker.t")  # main thread
        seen: list[str] = []
        t = threading.Thread(target=lambda: seen.append(worker_origin()),
                             name="repro-parallel_3")
        t.start()
        t.join()
        assert seen == ["worker.3"]


class TestCaptureIsolation:
    def test_capture_worker_diverts_all_emitters(self):
        with use_tracer(Tracer()):
            with capture_worker() as local:
                counter_add("store.chunks.compressed", 2)
                observe("store.chunk.compress.seconds", 0.1)
        # Emissions went to the task registry, not the default one.
        assert local.counter("store.chunks.compressed").value == 2
        snap = metrics_snapshot()
        assert snap["counters"].get("store.chunks.compressed", 0) == 0

    def test_capture_restores_previous_registry(self):
        from repro.observability.metrics import get_active_registry

        base = get_active_registry()
        with capture_worker():
            assert get_active_registry() is not base
        assert get_active_registry() is base

    def test_untraced_pooled_map_stays_silent(self):
        result = parallel_map(_work, list(range(16)),
                              config=ParallelConfig(n_jobs=4))
        assert result == [x * 2 for x in range(16)]
        snap = metrics_snapshot()
        assert snap["counters"].get("store.chunks.compressed", 0) == 0
        assert "worker.snapshots.merged" not in snap["counters"]
