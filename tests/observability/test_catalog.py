"""The metric catalog must cover every family the runtime emits."""

from __future__ import annotations

from repro.observability.catalog import (
    COUNTERS,
    GAUGES,
    HISTOGRAMS,
    METRIC_NAMES,
)


def test_store_cache_family_is_registered():
    assert {"store.cache.hits", "store.cache.misses",
            "store.cache.evictions",
            "store.cache.invalidations"} <= COUNTERS
    assert "store.cache.bytes" in GAUGES


def test_parallel_pool_family_is_registered():
    assert {"parallel.pool.created", "parallel.pool.reused",
            "parallel.pool.nested"} <= COUNTERS
    assert {"parallel.pool.size", "parallel.queue.depth"} <= GAUGES
    assert "parallel.chunk.seconds" in HISTOGRAMS


def test_telemetry_plane_families_are_registered():
    assert {"worker.snapshots.merged", "worker.merge.lossy",
            "server.requests", "server.errors",
            "profiler.samples"} <= COUNTERS


def test_serve_family_is_registered():
    assert {"serve.requests", "serve.errors", "serve.shed",
            "serve.bytes.sent", "serve.coalesce.hits",
            "serve.coalesce.waits"} <= COUNTERS
    assert "serve.queue.depth" in GAUGES
    assert "serve.request.seconds" in HISTOGRAMS


def test_serve_runtime_emissions_stay_in_catalog():
    """A real served request storm only creates cataloged series."""
    import numpy as np

    from repro.observability import get_registry
    from repro.observability.catalog import METRIC_PREFIXES
    from repro.serve import (
        BackgroundServer,
        ServeApp,
        ServeClient,
        StoreRegistry,
    )
    from repro.store import Store

    import tempfile
    import os

    get_registry().clear()
    try:
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "cat.dpzs")
            with Store.create(path) as st:
                st.add("f", np.arange(64.0, dtype=np.float32)
                       .reshape(8, 8), codec="raw", chunk_shape=(4, 4))
            app = ServeApp(
                StoreRegistry([path], cache_bytes=1 << 20),
                port=0, workers=1)
            with BackgroundServer(app), \
                    ServeClient(app.host, app.port) as c:
                c.manifest("cat")
                c.region("cat", "f", (slice(0, 8), slice(0, 8)))
                c.region("cat", "f", (slice(0, 4), slice(0, 4)))
                c.healthz()
        for name in get_registry().names():
            assert name in METRIC_NAMES or any(
                name.startswith(p) for p in METRIC_PREFIXES), name
    finally:
        get_registry().clear()


def test_kind_sets_are_disjoint():
    assert not (COUNTERS & GAUGES)
    assert not (COUNTERS & HISTOGRAMS)
    assert not (GAUGES & HISTOGRAMS)
    assert METRIC_NAMES == COUNTERS | GAUGES | HISTOGRAMS


def test_runtime_emissions_stay_in_catalog():
    """End-to-end: a pooled traced run plus a server scrape only ever
    creates cataloged (or registered-prefix) series."""
    import urllib.request

    from repro.observability import (
        Tracer,
        counter_add,
        get_registry,
        use_tracer,
    )
    from repro.observability.catalog import METRIC_PREFIXES
    from repro.observability.server import start_server
    from repro.parallel.executor import ParallelConfig, parallel_map

    get_registry().clear()
    try:
        with use_tracer(Tracer()):
            parallel_map(lambda x: counter_add("store.chunks.compressed"),
                         list(range(8)),
                         config=ParallelConfig(n_jobs=2))
        with start_server(0) as srv:
            urllib.request.urlopen(srv.url + "/metrics", timeout=5).read()
        for name in get_registry().names():
            assert name in METRIC_NAMES or any(
                name.startswith(p) for p in METRIC_PREFIXES), name
    finally:
        get_registry().clear()
