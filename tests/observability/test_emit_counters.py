"""NDJSON emitter, trace summaries, counters, and the traced pipeline."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.compressor import DPZCompressor
from repro.core.config import DPZ_L
from repro.observability import (
    Tracer,
    counter_add,
    counters_reset,
    counters_snapshot,
    get_registry,
    spans_to_ndjson,
    trace_summary,
    use_tracer,
    write_ndjson,
)


@pytest.fixture(autouse=True)
def _fresh_counters():
    # clear() (not reset()) so zero-valued metrics registered by other
    # tests don't leak into snapshot-shape assertions.
    get_registry().clear()
    yield
    get_registry().clear()


@pytest.fixture
def traced_run(smooth_2d):
    tracer = Tracer()
    comp = DPZCompressor(DPZ_L)
    with use_tracer(tracer):
        blob = comp.compress(smooth_2d.astype(np.float32))
        DPZCompressor.decompress(blob)
    return tracer, blob


def test_ndjson_structure(traced_run, tmp_path):
    tracer, _ = traced_run
    path = tmp_path / "trace.ndjson"
    n = write_ndjson(tracer, str(path), meta={"dataset": "smooth_2d"})
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["event"] == "meta"
    assert lines[0]["format"] == "repro-trace"
    assert lines[0]["dataset"] == "smooth_2d"
    span_lines = [rec for rec in lines if rec["event"] == "span"]
    assert len(span_lines) == n > 0
    for rec in span_lines:
        assert {"name", "t0", "dur", "span_id", "depth"} <= set(rec)
    # Compression emits zlib counters, so a counters trailer appears;
    # the gauge/histogram snapshot (when any) is the final line.
    trailers = [rec["event"] for rec in lines if rec["event"] != "span"]
    assert trailers[:2] == ["meta", "counters"]
    counters = next(rec for rec in lines if rec["event"] == "counters")
    assert counters["zlib.compress.calls"] >= 1
    metrics = next(rec for rec in lines if rec["event"] == "metrics")
    assert lines[-1] is metrics
    assert "zlib.compress.frame_bytes" in metrics["histograms"]


def test_ndjson_covers_all_dpz_stages(traced_run):
    tracer, _ = traced_run
    names = {s.name for s in tracer.spans}
    for stage in ("dpz.decompose", "dpz.dct", "dpz.pca", "dpz.quantize",
                  "dpz.encode", "dpz.serialize", "dpz.deserialize",
                  "dpz.dequantize", "dpz.inverse_pca",
                  "dpz.inverse_transform", "dpz.reassemble"):
        assert stage in names, f"missing span {stage}"


def test_serialize_span_carries_section_sizes(traced_run):
    tracer, blob = traced_run
    ser = next(s for s in tracer.spans if s.name == "dpz.serialize")
    assert ser.bytes_out == len(blob)
    sections = {k: v for k, v in ser.meta.items() if k.startswith("sec_")}
    assert sections and all(v >= 0 for v in sections.values())
    # Sections plus frame overhead account for the blob.
    assert sum(sections.values()) <= len(blob)


def test_trace_summary_shape(traced_run):
    tracer, _ = traced_run
    summary = trace_summary(tracer, prefix="dpz.")
    assert summary["n_spans"] > 0
    assert summary["total_s"] > 0
    assert abs(sum(summary["stage_shares"].values()) - 1.0) < 0.01
    assert set(summary["stage_times_s"]) == set(summary["stage_shares"])


def test_spans_to_ndjson_empty_tracer():
    text = spans_to_ndjson([], meta=None, counters={})
    lines = text.splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["event"] == "meta"


def test_counters_gated_on_tracing():
    counter_add("x.calls")  # no tracer installed: dropped
    assert counters_snapshot() == {}
    with use_tracer(Tracer()):
        counter_add("x.calls")
        counter_add("x.bytes", 100)
        counter_add("x.bytes", 23)
    snap = counters_snapshot()
    assert snap == {"x.bytes": 123, "x.calls": 1}
    counters_reset()
    assert counters_snapshot() == {}


def test_tracing_does_not_change_output(smooth_2d):
    data = smooth_2d.astype(np.float32)
    comp = DPZCompressor(DPZ_L)
    plain = comp.compress(data)
    with use_tracer(Tracer()):
        traced = comp.compress(data)
    assert plain == traced


def test_stats_times_match_span_names(smooth_2d):
    # DPZStats.times (the fig9 input) and the trace must agree on the
    # stage vocabulary.
    tracer = Tracer()
    comp = DPZCompressor(DPZ_L)
    with use_tracer(tracer):
        _, stats = comp.compress_with_stats(smooth_2d.astype(np.float32))
    span_stages = {s.name.removeprefix("dpz.")
                   for s in tracer.spans if s.name.startswith("dpz.")}
    for stage in stats.times:
        assert stage in span_stages
