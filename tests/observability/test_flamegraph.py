"""Flamegraph export: folded stacks, self time, self-contained HTML."""

from __future__ import annotations

import io
import json
import re

import numpy as np
import pytest

from repro.core.compressor import DPZCompressor
from repro.core.config import DPZ_L
from repro.observability import (
    Tracer,
    fold_spans,
    folded_to_text,
    load_trace,
    render_html,
    span,
    use_tracer,
    write_flamegraph,
    write_ndjson,
)


@pytest.fixture
def nested_tracer():
    tracer = Tracer()
    with use_tracer(tracer):
        with span("root"):
            with span("child_a"):
                with span("leaf"):
                    pass
            with span("child_b"):
                pass
    return tracer


def test_fold_spans_paths_and_self_time(nested_tracer):
    folded = fold_spans(nested_tracer.spans)
    assert set(folded) <= {"root", "root;child_a", "root;child_a;leaf",
                           "root;child_b"}
    # A parent's self time is its duration minus its children's.
    root = next(s for s in nested_tracer.spans if s.name == "root")
    children = [s for s in nested_tracer.spans
                if s.name in ("child_a", "child_b")]
    expect_self = root.dur - sum(c.dur for c in children)
    assert folded.get("root", 0.0) == pytest.approx(max(expect_self, 0.0),
                                                    abs=1e-9)


def test_folded_to_text_format(nested_tracer):
    text = folded_to_text(fold_spans(nested_tracer.spans))
    for line in text.strip().splitlines():
        m = re.fullmatch(r"(\S+) (\d+)", line)
        assert m, f"bad folded line: {line!r}"
        assert int(m.group(2)) >= 1  # microseconds, floored at 1
    assert folded_to_text({}) == ""


def test_render_html_self_contained(nested_tracer):
    html = render_html(nested_tracer.spans, title="unit test")
    assert html.startswith("<!DOCTYPE html>")
    assert "unit test" in html
    assert "http://" not in html and "https://" not in html
    m = re.search(r"var DATA = (.*?);\n", html, re.S)
    assert m, "embedded data missing"
    forest = json.loads(m.group(1))
    assert len(forest) == 1 and forest[0]["name"] == "root"
    names = {c["name"] for c in forest[0]["children"]}
    assert names == {"child_a", "child_b"}


def test_write_flamegraph_counts_roots(nested_tracer, tmp_path):
    out = tmp_path / "fg.html"
    assert write_flamegraph(nested_tracer, str(out), title="t") == 1
    assert out.read_text().startswith("<!DOCTYPE html>")
    buf = io.StringIO()
    assert write_flamegraph(nested_tracer.spans, buf) == 1
    assert buf.getvalue().startswith("<!DOCTYPE html>")


def test_flamegraph_from_ndjson_records(tmp_path, smooth_2d):
    # The CLI path: trace -> NDJSON -> load -> flamegraph from dicts.
    tracer = Tracer()
    comp = DPZCompressor(DPZ_L)
    with use_tracer(tracer):
        comp.compress(smooth_2d.astype(np.float32))
    path = tmp_path / "t.ndjson"
    write_ndjson(tracer, str(path), meta={"dataset": "x"})
    spans = load_trace(str(path))["spans"]
    html = render_html(spans)
    m = re.search(r"var DATA = (.*?);\n", html, re.S)
    forest = json.loads(m.group(1))

    def count(nodes):
        return sum(1 + count(n["children"]) for n in nodes)

    assert count(forest) == len(spans)
    # Folded output from live spans and reloaded dicts is identical
    # (paths and self-times survive the NDJSON roundtrip).
    live = fold_spans(tracer.spans)
    reloaded = fold_spans(spans)
    assert set(live) == set(reloaded)
    for key in live:
        assert reloaded[key] == pytest.approx(live[key], abs=1e-9)
