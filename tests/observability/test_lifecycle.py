"""Shared server-lifecycle plumbing: bind helpers and the Drainer."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.errors import ConfigError
from repro.observability.lifecycle import (
    Drainer,
    bind_failure,
    bind_tcp_socket,
    bind_unix_socket,
    validate_port,
)


class TestValidatePort:
    def test_accepts_range(self):
        assert validate_port(0) == 0
        assert validate_port(65535) == 65535

    @pytest.mark.parametrize("bad", [-1, 65536, 99999])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ConfigError):
            validate_port(bad)


class TestBindTcp:
    def test_binds_and_listens(self):
        sock = bind_tcp_socket("127.0.0.1", 0, what="test")
        try:
            host, port = sock.getsockname()
            assert port > 0
            probe = socket.create_connection((host, port), timeout=5)
            probe.close()
        finally:
            sock.close()

    def test_conflict_is_one_line_config_error(self):
        sock = bind_tcp_socket("127.0.0.1", 0, what="test")
        try:
            port = sock.getsockname()[1]
            with pytest.raises(ConfigError,
                               match="cannot bind test listener"):
                bind_tcp_socket("127.0.0.1", port, what="test")
        finally:
            sock.close()

    def test_bind_failure_message_shape(self):
        err = bind_failure("telemetry", "127.0.0.1:9412",
                           OSError(98, "Address already in use"))
        assert str(err) == ("cannot bind telemetry listener on "
                            "127.0.0.1:9412: Address already in use")


class TestBindUnix:
    def test_binds_fresh_path(self, tmp_path):
        path = str(tmp_path / "fresh.sock")
        sock = bind_unix_socket(path, what="test")
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.connect(path)
            probe.close()
        finally:
            sock.close()

    def test_stale_socket_is_reclaimed(self, tmp_path):
        path = str(tmp_path / "stale.sock")
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(path)
        dead.close()  # socket file remains, nobody listening
        sock = bind_unix_socket(path, what="test")
        sock.close()

    def test_live_socket_is_refused(self, tmp_path):
        path = str(tmp_path / "live.sock")
        live = bind_unix_socket(path, what="test")
        try:
            with pytest.raises(ConfigError, match="live process"):
                bind_unix_socket(path, what="test")
        finally:
            live.close()

    def test_regular_file_never_deleted(self, tmp_path):
        path = tmp_path / "notasocket"
        path.write_text("precious")
        with pytest.raises(ConfigError, match="not a socket"):
            bind_unix_socket(str(path), what="test")
        assert path.read_text() == "precious"


class TestDrainer:
    def test_track_counts(self):
        d = Drainer()
        assert d.active == 0
        with d.track():
            assert d.active == 1
        assert d.active == 0

    def test_closed_refuses_new_entries(self):
        d = Drainer()
        d.close()
        assert d.closed
        with pytest.raises(ConfigError, match="draining"):
            d.track().__enter__()

    def test_wait_idle_immediate_when_idle(self):
        d = Drainer()
        assert d.wait_idle(timeout=0.1) is True

    def test_wait_idle_blocks_until_exit(self):
        d = Drainer()
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with d.track():
                entered.set()
                release.wait(10.0)

        t = threading.Thread(target=holder)
        t.start()
        assert entered.wait(10.0)
        d.close()
        assert d.wait_idle(timeout=0.05) is False  # still held
        release.set()
        assert d.wait_idle(timeout=10.0) is True
        t.join(timeout=10.0)

    def test_in_flight_request_finishes_before_drain(self):
        """The ordering the telemetry/serve close() paths rely on."""
        d = Drainer()
        order = []
        started = threading.Event()

        def request():
            with d.track():
                started.set()
                time.sleep(0.1)
                order.append("request-done")

        t = threading.Thread(target=request)
        t.start()
        assert started.wait(10.0)
        d.close()
        d.wait_idle(timeout=10.0)
        order.append("drained")
        t.join(timeout=10.0)
        assert order == ["request-done", "drained"]


class TestTelemetryServerDrain:
    """The metrics server now drains in-flight requests on close."""

    def test_close_waits_for_in_flight_request(self):
        import urllib.request

        from repro.observability.server import start_server

        srv = start_server(0)
        try:
            # A request mid-flight holds the drainer; close() must not
            # kill the socket under it.
            with urllib.request.urlopen(srv.url + "/metrics",
                                        timeout=5) as resp:
                assert resp.status == 200
        finally:
            srv.close()
        assert srv.drainer.closed

    def test_draining_server_returns_503(self):
        from repro.observability.server import TelemetryServer

        srv = TelemetryServer(0).start()
        srv.drainer.close()  # simulate shutdown having begun
        import json
        import urllib.error
        import urllib.request

        try:
            with pytest.raises(urllib.error.HTTPError) as ei:
                urllib.request.urlopen(srv.url + "/metrics", timeout=5)
            assert ei.value.code == 503
            assert json.loads(ei.value.read())["error"] \
                == "server is draining"
        finally:
            srv.close()
