"""Typed metric registry: counters, gauges, histograms, exposition."""

from __future__ import annotations

import math
import threading

import pytest

from repro.errors import ConfigError
from repro.observability import (
    Tracer,
    counter_inc,
    gauge_add,
    gauge_set,
    get_registry,
    metrics_enabled,
    metrics_reset,
    metrics_snapshot,
    observe,
    render_prometheus,
    use_tracer,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    get_registry().clear()
    yield
    get_registry().clear()


# -- metric primitives -------------------------------------------------------

def test_counter_is_monotonic():
    c = Counter("c")
    c.add()
    c.add(41)
    assert c.value == 42
    with pytest.raises(ConfigError):
        c.add(-1)
    c.reset()
    assert c.value == 0


def test_gauge_set_and_add():
    g = Gauge("g")
    g.set(2.5)
    g.add(-1.0)
    assert g.value == 1.5
    g.reset()
    assert g.value == 0.0


def test_histogram_bounds_are_pure_function_of_config():
    h1 = Histogram("a", lo=1e-3, hi=1e3, buckets_per_decade=3)
    h2 = Histogram("b", lo=1e-3, hi=1e3, buckets_per_decade=3)
    assert h1._bounds == h2._bounds
    assert h1._bounds[-1] == 1e3
    assert len(h1._counts) == len(h1._bounds) + 1  # + overflow


def test_histogram_observe_and_summary():
    h = Histogram("h", lo=1e-3, hi=1e3)
    for v in (0.01, 0.1, 1.0, 10.0):
        h.observe(v)
    d = h.to_dict()
    assert d["count"] == 4
    assert d["sum"] == pytest.approx(11.11)
    assert d["min"] == pytest.approx(0.01)
    assert d["max"] == pytest.approx(10.0)
    assert sum(d["counts"]) == 4


def test_histogram_quantiles_monotone_and_clamped():
    h = Histogram("h", lo=1e-3, hi=1e3)
    for v in (0.01, 0.1, 1.0, 10.0, 100.0):
        h.observe(v)
    p50, p95 = h.quantile(0.5), h.quantile(0.95)
    assert 1e-3 <= p50 <= p95 <= 1e3
    # Outliers cannot escape the configured range.
    h.observe(1e9)
    assert h.quantile(1.0) == 1e3
    h.observe(1e-9)
    assert h.quantile(0.0) >= 0.0
    assert math.isnan(Histogram("empty").quantile(0.5))
    with pytest.raises(ConfigError):
        h.quantile(1.5)


def test_histogram_underflow_and_nonpositive():
    h = Histogram("h", lo=1.0, hi=100.0)
    h.observe(0.0)
    h.observe(-5.0)
    h.observe(0.5)
    assert h.count == 3
    assert h._counts[0] == 3  # all landed in underflow


def test_histogram_rejects_bad_config():
    with pytest.raises(ConfigError):
        Histogram("bad", lo=1.0, hi=1.0)
    with pytest.raises(ConfigError):
        Histogram("bad", lo=1.0, hi=10.0, buckets_per_decade=0)


# -- registry ----------------------------------------------------------------

def test_registry_get_or_create_and_kind_conflict():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    with pytest.raises(ConfigError):
        reg.gauge("x")
    with pytest.raises(ConfigError):
        reg.histogram("x")


def test_registry_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("runs").add(2)
    reg.gauge("cr").set(7.5)
    reg.histogram("lat", lo=1e-6, hi=1.0).observe(0.01)
    snap = reg.snapshot()
    assert snap["counters"] == {"runs": 2}
    assert snap["gauges"] == {"cr": 7.5}
    assert snap["histograms"]["lat"]["count"] == 1
    assert "p50" in snap["histograms"]["lat"]


def test_registry_reset_by_kind():
    reg = MetricsRegistry()
    reg.counter("c").add(5)
    reg.gauge("g").set(3.0)
    reg.reset(kinds=("counter",))
    assert reg.counter("c").value == 0
    assert reg.gauge("g").value == 3.0
    reg.reset()
    assert reg.gauge("g").value == 0.0


def test_counter_thread_safety():
    reg = MetricsRegistry()
    c = reg.counter("hits")

    def hammer():
        for _ in range(10_000):
            c.add()

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 40_000


# -- Prometheus exposition ---------------------------------------------------

def test_prometheus_rendering():
    reg = MetricsRegistry()
    reg.counter("dpz.compress.runs").add(3)
    reg.gauge("dpz.last.cr").set(7.25)
    h = reg.histogram("parallel.chunk.seconds", lo=1e-6, hi=10.0)
    h.observe(0.002)
    h.observe(0.004)
    text = reg.render_prometheus()
    assert "# TYPE repro_dpz_compress_runs_total counter" in text
    assert "repro_dpz_compress_runs_total 3" in text
    assert "repro_dpz_last_cr 7.25" in text
    assert "# TYPE repro_parallel_chunk_seconds histogram" in text
    assert 'repro_parallel_chunk_seconds_bucket{le="+Inf"} 2' in text
    assert "repro_parallel_chunk_seconds_count 2" in text
    # Cumulative bucket counts never decrease.
    buckets = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
               if line.startswith("repro_parallel_chunk_seconds_bucket")]
    assert buckets == sorted(buckets)


def test_prometheus_custom_prefix():
    reg = MetricsRegistry()
    reg.counter("a.b").add()
    assert "custom_a_b_total 1" in reg.render_prometheus(prefix="custom_")


# -- gated module-level helpers ---------------------------------------------

def test_helpers_noop_when_disabled():
    assert not metrics_enabled()
    counter_inc("off.counter")
    gauge_set("off.gauge", 1.0)
    gauge_add("off.gauge", 1.0)
    observe("off.hist", 0.5)
    snap = metrics_snapshot()
    assert "off.counter" not in snap["counters"]
    assert "off.gauge" not in snap["gauges"]
    assert "off.hist" not in snap["histograms"]


def test_helpers_record_when_traced():
    with use_tracer(Tracer()):
        assert metrics_enabled()
        counter_inc("on.counter", 2)
        gauge_set("on.gauge", 5.0)
        gauge_add("on.gauge", 1.0)
        observe("on.hist", 0.25, lo=1e-3, hi=1e3)
    snap = metrics_snapshot()
    assert snap["counters"]["on.counter"] == 2
    assert snap["gauges"]["on.gauge"] == 6.0
    assert snap["histograms"]["on.hist"]["count"] == 1
    assert "on_hist" in render_prometheus().replace(".", "_")


def test_default_registry_is_shared():
    with use_tracer(Tracer()):
        counter_inc("shared.counter")
    assert get_registry().counter("shared.counter").value == 1


# -- instrumented pipelines --------------------------------------------------

def test_sz_baseline_populates_metrics(smooth_2d):
    import numpy as np

    from repro.baselines import sz_compress, sz_decompress

    data = smooth_2d.astype(np.float32)
    with use_tracer(Tracer()):
        blob = sz_compress(data, eps=1e-3)
        sz_decompress(blob)
    snap = metrics_snapshot()
    assert snap["counters"]["sz.compress.runs"] == 1
    assert snap["counters"]["sz.decompress.runs"] == 1
    assert snap["gauges"]["sz.last.cr"] > 1.0
    assert snap["histograms"]["sz.compress.seconds"]["count"] == 1
    assert snap["histograms"]["sz.decompress.seconds"]["count"] == 1
    # SZ's entropy stage rides the instrumented Huffman codec.
    assert snap["histograms"]["huffman.encode.symbols_per_call"]["count"] >= 1
    assert snap["histograms"]["huffman.decode.symbols_per_call"]["count"] >= 1


def test_zfp_baseline_populates_metrics(smooth_2d):
    import numpy as np

    from repro.baselines import zfp_compress, zfp_decompress

    data = smooth_2d.astype(np.float32)
    with use_tracer(Tracer()):
        blob = zfp_compress(data, rate=8.0)
        zfp_decompress(blob)
    snap = metrics_snapshot()
    assert snap["counters"]["zfp.compress.runs"] == 1
    assert snap["counters"]["zfp.decompress.runs"] == 1
    assert snap["gauges"]["zfp.last.cr"] > 1.0
    assert snap["histograms"]["zfp.compress.seconds"]["count"] == 1
    assert snap["histograms"]["zfp.decompress.seconds"]["count"] == 1


def test_parallel_map_populates_pool_metrics():
    from repro.parallel.executor import (
        ParallelConfig,
        parallel_map,
        shutdown_pool,
    )

    shutdown_pool()  # the pool-size gauge is only set on pool creation
    with use_tracer(Tracer()):
        out = parallel_map(lambda x: x * 2, list(range(8)),
                           config=ParallelConfig(n_jobs=2, min_chunk=1))
    assert out == [x * 2 for x in range(8)]
    snap = metrics_snapshot()
    assert snap["gauges"]["parallel.pool.size"] >= 2
    # Every dispatched chunk finished: the depth gauge is back to zero.
    assert snap["gauges"]["parallel.queue.depth"] == 0.0
    assert snap["histograms"]["parallel.chunk.seconds"]["count"] == 8
