"""Sampling profiler: span-stack attribution, records, flamegraph."""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigError
from repro.observability import (
    SamplingProfiler,
    Tracer,
    get_registry,
    span,
    use_profiler,
    use_tracer,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    get_registry().clear()
    yield
    get_registry().clear()


def _busy(tracer: Tracer, seconds: float = 0.08) -> None:
    with use_tracer(tracer):
        with span("outer"):
            with span("inner"):
                time.sleep(seconds)


class TestSampling:
    def test_samples_attribute_to_span_stack(self):
        tracer = Tracer()
        with SamplingProfiler(tracer, interval=0.002) as prof:
            _busy(tracer)
        assert prof.total_samples > 0
        folded = prof.folded()
        assert "outer;inner" in folded
        # Nearly all wall time was inside outer;inner.
        assert folded["outer;inner"] >= 0.8 * sum(folded.values())

    def test_idle_ticks_counted_when_nothing_is_open(self):
        prof = SamplingProfiler(Tracer(), interval=0.002).start()
        time.sleep(0.03)
        prof.stop()
        assert prof.ticks > 0
        assert prof.idle_ticks == prof.ticks
        assert prof.total_samples == 0

    def test_follows_installed_tracer_when_none_given(self):
        tracer = Tracer()
        with use_profiler(interval=0.002) as prof:
            _busy(tracer)
        assert "outer;inner" in prof.folded()

    def test_stop_publishes_sample_counter(self):
        tracer = Tracer()
        with SamplingProfiler(tracer, interval=0.002) as prof:
            _busy(tracer, 0.04)
        assert get_registry().counter("profiler.samples").value == \
            prof.total_samples > 0

    def test_sees_pool_worker_stacks(self):
        from repro.parallel.executor import ParallelConfig, parallel_map

        tracer = Tracer()
        with SamplingProfiler(tracer, interval=0.002) as prof:
            with use_tracer(tracer):
                parallel_map(lambda x: time.sleep(0.02),
                             list(range(8)),
                             config=ParallelConfig(n_jobs=4))
        assert any("parallel.chunk" in stack
                   for stack in prof.folded()), prof.folded()


class TestOutputs:
    def _profiled(self) -> SamplingProfiler:
        tracer = Tracer()
        with SamplingProfiler(tracer, interval=0.002) as prof:
            _busy(tracer)
        return prof

    def test_to_records_schema(self):
        prof = self._profiled()
        records = prof.to_records()
        header, samples = records[0], records[1:]
        assert header["event"] == "profile"
        assert header["format"] == "repro-profile"
        assert header["version"] == 1
        assert header["interval_s"] == prof.interval
        assert header["total_samples"] == sum(r["count"] for r in samples)
        for rec in samples:
            assert rec["event"] == "sample"
            assert isinstance(rec["stack"], list) and rec["stack"]
            assert rec["count"] >= 1
            assert rec["est_s"] == pytest.approx(
                rec["count"] * prof.interval)

    def test_flamegraph_html(self, tmp_path):
        prof = self._profiled()
        out = tmp_path / "prof.html"
        n_roots = prof.write_flamegraph(str(out), title="test profile")
        html = out.read_text()
        assert n_roots >= 1
        assert "test profile" in html
        assert "outer" in html and "inner" in html

    def test_span_forest_durations_nest(self):
        prof = self._profiled()
        spans = prof._span_forest()
        by_id = {s["span_id"]: s for s in spans}
        for s in spans:
            if s["parent_id"] is not None:
                # A parent's estimated time includes all its children.
                assert by_id[s["parent_id"]]["dur"] >= s["dur"]


class TestLifecycle:
    def test_double_start_refused(self):
        prof = SamplingProfiler(Tracer(), interval=0.01).start()
        try:
            with pytest.raises(ConfigError, match="already running"):
                prof.start()
        finally:
            prof.stop()

    def test_stop_is_idempotent(self):
        prof = SamplingProfiler(Tracer(), interval=0.01).start()
        prof.stop()
        prof.stop()

    def test_bad_interval_and_mode_rejected(self):
        with pytest.raises(ConfigError, match="interval"):
            SamplingProfiler(Tracer(), interval=0.0)
        with pytest.raises(ConfigError, match="mode"):
            SamplingProfiler(Tracer(), mode="magic")

    def test_signal_mode_falls_back_off_main_thread(self):
        import threading

        results: dict = {}

        def run() -> None:
            prof = SamplingProfiler(Tracer(), interval=0.01,
                                    mode="signal").start()
            results["mode"] = prof.mode
            results["reason"] = prof.fallback_reason
            prof.stop()

        t = threading.Thread(target=run)
        t.start()
        t.join()
        assert results["mode"] == "thread"
        assert "main thread" in results["reason"]
