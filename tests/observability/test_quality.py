"""Quality telemetry: deterministic slab, gauges, compressor hook."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import max_abs_error, psnr
from repro.core.compressor import DPZCompressor
from repro.core.config import DPZ_L
from repro.observability import (
    QualityConfig,
    Tracer,
    get_registry,
    metrics_snapshot,
    quality_enabled,
    record_quality,
    use_quality,
    use_tracer,
)
from repro.observability.quality import slab_indices


@pytest.fixture(autouse=True)
def _fresh_registry():
    get_registry().clear()
    yield
    get_registry().clear()


def test_slab_indices_deterministic_and_bounded():
    a = slab_indices(1_000_000, 1 << 16)
    b = slab_indices(1_000_000, 1 << 16)
    assert np.array_equal(a, b)
    assert a.size == 1 << 16
    assert a[0] == 0 and a[-1] == 999_999
    assert np.all(np.diff(a) > 0)


def test_slab_indices_small_field_is_exact():
    idx = slab_indices(100, 1 << 16)
    assert np.array_equal(idx, np.arange(100))


def test_quality_config_validation():
    with pytest.raises(ValueError):
        QualityConfig(max_points=0)


def test_use_quality_installs_and_restores():
    assert not quality_enabled()
    with use_quality() as cfg:
        assert quality_enabled()
        assert cfg.max_points == 1 << 16
        with use_quality(QualityConfig(max_points=10)) as inner:
            assert inner.max_points == 10
        assert quality_enabled()
    assert not quality_enabled()


def test_record_quality_matches_direct_metrics():
    rng = np.random.default_rng(0)
    a = rng.normal(size=500).astype(np.float32)
    b = a + rng.normal(scale=1e-3, size=500).astype(np.float32)
    rec = record_quality(a, b, compressed_nbytes=250,
                         config=QualityConfig(max_points=1 << 16))
    # Small field: the slab is the whole array, so values are exact.
    assert rec["psnr_db"] == pytest.approx(float(psnr(a, b)))
    assert rec["max_abs_error"] == pytest.approx(float(max_abs_error(a, b)))
    assert rec["cr"] == pytest.approx(a.nbytes / 250)
    assert rec["bitrate"] == pytest.approx(8 * 250 / a.size)
    assert rec["sampled_points"] == a.size
    assert rec["sample_fraction"] == 1.0


def test_record_quality_sets_gauges_and_span_meta():
    a = np.linspace(0.0, 1.0, 256, dtype=np.float32)
    b = a + 1e-4
    tracer = Tracer()
    with use_tracer(tracer):
        from repro.observability import span
        with span("outer"):
            record_quality(a, b, compressed_nbytes=64, tve_at_k=1e-6)
    gauges = metrics_snapshot()["gauges"]
    assert gauges["quality.psnr_db"] > 0
    assert gauges["quality.max_abs_error"] == pytest.approx(1e-4, rel=1e-2)
    assert gauges["quality.tve_at_k"] == pytest.approx(1e-6)
    outer = next(s for s in tracer.spans if s.name == "outer")
    assert "quality_psnr_db" in outer.meta
    assert "quality_cr" in outer.meta


def test_compressor_runs_quality_stage_when_enabled(smooth_2d):
    data = smooth_2d.astype(np.float32)
    comp = DPZCompressor(DPZ_L)
    with use_tracer(Tracer()), use_quality():
        blob, stats = comp.compress_with_stats(data)
    assert "quality" in stats.times
    gauges = metrics_snapshot()["gauges"]
    assert gauges["quality.psnr_db"] > 20.0
    assert gauges["quality.cr"] == pytest.approx(stats.cr, rel=1e-6)
    # The recorded error must be consistent with a real reconstruction.
    recon = DPZCompressor.decompress(blob)
    assert gauges["quality.max_abs_error"] <= float(
        max_abs_error(data, recon)) * (1.0 + 1e-9)


def test_compressor_skips_quality_stage_when_disabled(smooth_2d):
    comp = DPZCompressor(DPZ_L)
    with use_tracer(Tracer()):
        _, stats = comp.compress_with_stats(smooth_2d.astype(np.float32))
    assert "quality" not in stats.times
    assert "quality.psnr_db" not in metrics_snapshot()["gauges"]


def test_quality_without_tracer_still_returns_record(smooth_2d):
    # Quality gating is independent of the tracer: the record is
    # computed, but the gauges are dropped (metrics are tracer-gated).
    data = smooth_2d.astype(np.float32)
    comp = DPZCompressor(DPZ_L)
    with use_quality():
        _, stats = comp.compress_with_stats(data)
    assert "quality" in stats.times
    assert "quality.psnr_db" not in metrics_snapshot()["gauges"]
