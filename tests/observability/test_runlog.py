"""Run registry: record schema, persistence, lookup, diffing."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.compressor import DPZCompressor
from repro.core.config import DPZ_L, DPZ_S
from repro.observability import (
    Tracer,
    append_record,
    build_record,
    config_digest,
    diff_runs,
    find_run,
    format_run_table,
    get_registry,
    load_runs,
    use_tracer,
)
from repro.observability.runlog import RECORD_VERSION, resolve_runlog


@pytest.fixture(autouse=True)
def _fresh_registry():
    get_registry().clear()
    yield
    get_registry().clear()


def _make_record(data, config=DPZ_L, dataset="synthetic"):
    comp = DPZCompressor(config)
    tracer = Tracer()
    with use_tracer(tracer):
        blob, stats = comp.compress_with_stats(data)
    return build_record(
        dataset=dataset, shape=data.shape, dtype=str(data.dtype),
        config=config, cr=stats.cr, compressed_nbytes=len(blob),
        original_nbytes=int(data.nbytes), wall_s=0.1, tracer=tracer,
        k=stats.k, m_blocks=stats.m_blocks,
    )


def test_config_digest_stable_and_order_free():
    d1 = config_digest({"a": 1, "b": 2})
    d2 = config_digest({"b": 2, "a": 1})
    assert d1 == d2 and len(d1) == 12
    assert config_digest({"a": 1, "b": 3}) != d1
    # Dataclass and its dict form digest identically.
    import dataclasses
    assert config_digest(DPZ_L) == config_digest(dataclasses.asdict(DPZ_L))


def test_build_record_schema(smooth_2d):
    rec = _make_record(smooth_2d.astype(np.float32))
    assert rec["record"] == "dpz-run"
    assert rec["version"] == RECORD_VERSION
    assert len(rec["run_id"]) == 12
    assert rec["config_digest"] == config_digest(DPZ_L)
    assert rec["error_bound"] == DPZ_L.p
    assert rec["cr"] > 1.0
    assert rec["shape"] == list(smooth_2d.shape)
    assert "dpz.pca" in rec["stage_times_s"]
    assert abs(sum(rec["stage_shares"].values()) - 1.0) < 0.02
    assert set(rec["metrics"]) == {"counters", "gauges", "histograms"}
    json.dumps(rec)  # must be JSON-serializable as-is


def test_append_and_load_roundtrip(tmp_path, smooth_2d):
    path = tmp_path / "runs.ndjson"
    data = smooth_2d.astype(np.float32)
    for _ in range(2):
        assert append_record(_make_record(data), str(path)) == str(path)
    runs = load_runs(str(path))
    assert len(runs) == 2
    assert runs[0]["run_id"] != runs[1]["run_id"]


def test_load_runs_skips_garbage_lines(tmp_path, smooth_2d):
    path = tmp_path / "runs.ndjson"
    rec = _make_record(smooth_2d.astype(np.float32))
    path.write_text(
        json.dumps(rec) + "\n"
        + "{this is not json\n"
        + '{"record": "other-tool", "x": 1}\n'
        + json.dumps(rec) + "\n"
        + '{"half written'  # killed-process tail
    )
    runs = load_runs(str(path))
    assert len(runs) == 2


def test_find_run_by_index_and_prefix(tmp_path, smooth_2d):
    data = smooth_2d.astype(np.float32)
    runs = [_make_record(data) for _ in range(3)]
    assert find_run(runs, "0") is runs[0]
    assert find_run(runs, "-1") is runs[-1]
    rid = runs[1]["run_id"]
    assert find_run(runs, rid[:6]) is runs[1]
    with pytest.raises(KeyError):
        find_run(runs, "zzzz")
    with pytest.raises(KeyError):
        find_run(runs, "")  # every id matches the empty prefix


def test_format_run_table(smooth_2d):
    runs = [_make_record(smooth_2d.astype(np.float32))]
    table = format_run_table(runs)
    assert runs[0]["run_id"] in table
    assert "cr" in table.splitlines()[0]


def test_diff_runs_reports_config_and_stage_changes(smooth_2d):
    data = smooth_2d.astype(np.float32)
    a = _make_record(data, config=DPZ_L)
    b = _make_record(data, config=DPZ_S)
    text = diff_runs(a, b)
    assert "config differs" in text
    assert "cr" in text and "wall_s" in text
    assert "dpz.pca" in text


def test_resolve_runlog_precedence(monkeypatch):
    assert resolve_runlog("explicit.ndjson") == "explicit.ndjson"
    monkeypatch.setenv("DPZ_RUNLOG", "/tmp/env.ndjson")
    assert resolve_runlog() == "/tmp/env.ndjson"
    monkeypatch.delenv("DPZ_RUNLOG")
    assert resolve_runlog() == "runs.ndjson"
