"""Endpoint contract for the live telemetry server."""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigError
from repro.observability import get_registry
from repro.observability.server import (
    METRICS_PORT_ENV,
    TelemetryServer,
    maybe_start_from_env,
    start_server,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    get_registry().clear()
    yield
    get_registry().clear()


@pytest.fixture
def server():
    srv = start_server(0)  # ephemeral port
    yield srv
    srv.close()


def _get(url: str) -> tuple[int, str, bytes]:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers["Content-Type"], resp.read()


#: One Prometheus sample line: name, optional {labels}, numeric value.
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
    r"[-+]?(\d+\.?\d*([eE][-+]?\d+)?|Inf|NaN)$")


def _parse_prometheus(text: str) -> dict[str, float]:
    """Minimal exposition-format parser: every non-comment line must be
    a well-formed sample; returns bare-name -> value for scalar lines."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _PROM_SAMPLE.match(line), f"bad sample line: {line!r}"
        name, _, value = line.partition(" ")
        if "{" not in name:
            samples[name] = float(value)
    return samples


class TestRoutes:
    def test_metrics_parses_as_prometheus_text(self, server):
        reg = get_registry()
        reg.counter("server.requests")  # pre-touch: family must render
        reg.counter("store.chunks.compressed").add(7)
        reg.gauge("store.cache.bytes").set(4096.0)
        reg.histogram("store.region.seconds").observe(0.01)
        status, ctype, body = _get(server.url + "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain") and "version=0.0.4" in ctype
        samples = _parse_prometheus(body.decode())
        assert samples["repro_store_chunks_compressed_total"] == 7.0
        assert samples["repro_store_cache_bytes"] == 4096.0
        assert samples["repro_store_region_seconds_count"] == 1.0
        # The scrape itself was counted.
        assert samples["repro_server_requests_total"] >= 1.0

    def test_metrics_json_mirrors_snapshot(self, server):
        get_registry().counter("store.chunks.compressed").add(3)
        status, ctype, body = _get(server.url + "/metrics.json")
        assert status == 200 and ctype == "application/json"
        snap = json.loads(body)
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["store.chunks.compressed"] == 3

    def test_healthz_contract(self, server):
        status, ctype, body = _get(server.url + "/healthz")
        assert status == 200 and ctype == "application/json"
        health = json.loads(body)
        for key in ("status", "pid", "uptime_s", "started_utc",
                    "tracing", "pool", "stores"):
            assert key in health, key
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0.0
        assert isinstance(health["tracing"], bool)
        assert {"created", "workers", "alive"} <= set(health["pool"])
        assert {"open_stores", "cache_bytes"} <= set(health["stores"])

    def test_runs_round_trips_registry(self, server, tmp_path,
                                       monkeypatch):
        from repro.observability import append_record, build_record

        runlog = tmp_path / "runs.ndjson"
        monkeypatch.setenv("DPZ_RUNLOG", str(runlog))
        record = build_record(
            dataset="t", shape=(4, 4), dtype="float32",
            config={"p": 1e-3}, cr=5.0, compressed_nbytes=100,
            original_nbytes=500, wall_s=0.1)
        append_record(record, str(runlog))
        status, _, body = _get(server.url + "/runs")
        assert status == 200
        runs = json.loads(body)
        assert len(runs) == 1
        assert runs[0]["run_id"] == record["run_id"]
        assert runs[0]["cr"] == record["cr"]

    def test_runs_missing_registry_is_empty_list(self, server, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("DPZ_RUNLOG", str(tmp_path / "absent.ndjson"))
        status, _, body = _get(server.url + "/runs")
        assert status == 200 and json.loads(body) == []

    def test_unknown_path_is_json_404_and_counted(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _get(server.url + "/nope")
        err = exc_info.value
        assert err.code == 404
        payload = json.loads(err.read())
        assert "/metrics" in payload["routes"]
        assert get_registry().counter("server.errors").value == 1

    def test_root_serves_metrics(self, server):
        status, ctype, _ = _get(server.url + "/")
        assert status == 200 and ctype.startswith("text/plain")


class TestLifecycle:
    def test_second_bind_refused_with_one_line_error(self, server):
        with pytest.raises(ConfigError) as exc_info:
            TelemetryServer(server.port)
        message = str(exc_info.value)
        assert "\n" not in message
        assert str(server.port) in message

    def test_close_releases_port(self):
        srv = start_server(0)
        port = srv.port
        srv.close()
        srv2 = start_server(port)  # rebinding proves the close was clean
        srv2.close()

    def test_double_start_refused(self):
        srv = start_server(0)
        try:
            with pytest.raises(ConfigError, match="already started"):
                srv.start()
        finally:
            srv.close()

    def test_invalid_port_rejected(self):
        with pytest.raises(ConfigError, match="port"):
            TelemetryServer(70000)

    def test_context_manager_closes(self):
        with start_server(0) as srv:
            status, _, _ = _get(srv.url + "/healthz")
            assert status == 200
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(srv.url + "/healthz", timeout=0.5)


class TestEnvOptIn:
    def test_absent_env_means_no_server(self, monkeypatch):
        monkeypatch.delenv(METRICS_PORT_ENV, raising=False)
        assert maybe_start_from_env() is None

    def test_env_starts_server(self, monkeypatch):
        monkeypatch.setenv(METRICS_PORT_ENV, "0")
        srv = maybe_start_from_env()
        assert srv is not None
        try:
            status, _, _ = _get(srv.url + "/healthz")
            assert status == 200
        finally:
            srv.close()

    def test_malformed_env_is_one_line_error(self, monkeypatch):
        monkeypatch.setenv(METRICS_PORT_ENV, "not-a-port")
        with pytest.raises(ConfigError, match="DPZ_METRICS_PORT"):
            maybe_start_from_env()
