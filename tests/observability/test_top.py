"""Dashboard rendering: totals, rates, and graceful empty panels."""

from __future__ import annotations

from repro.observability.top import Dashboard, _fmt_num, _fmt_secs


def _snapshot(*, compressed=0, hits=0, misses=0, cache_bytes=0.0,
              queue=0.0, pool=0.0, region_hist=None) -> dict:
    snap = {
        "counters": {
            "store.chunks.compressed": compressed,
            "store.cache.hits": hits,
            "store.cache.misses": misses,
        },
        "gauges": {
            "store.cache.bytes": cache_bytes,
            "parallel.queue.depth": queue,
            "parallel.pool.size": pool,
        },
        "histograms": {},
    }
    if region_hist is not None:
        snap["histograms"]["store.region.seconds"] = region_hist
    return snap


class TestPanels:
    def test_empty_snapshot_renders_all_panels(self):
        out = Dashboard().update({})
        for panel in ("throughput", "cache", "latency", "pool"):
            assert panel in out
        assert "(no traffic yet)" in out
        assert "(cold)" in out
        assert "(no samples)" in out

    def test_totals_then_rates(self):
        clock_values = iter([10.0, 12.0])
        dash = Dashboard(clock=lambda: next(clock_values))
        first = dash.update(_snapshot(compressed=100))
        assert "chunks compressed" in first and "100" in first
        assert "/s" not in first  # no rate on the first frame
        second = dash.update(_snapshot(compressed=300))
        # 200 more chunks over 2 seconds -> 100/s.
        assert "100/s" in second
        assert "300" in second

    def test_counter_reset_clamps_rate_to_zero(self):
        clock_values = iter([0.0, 1.0])
        dash = Dashboard(clock=lambda: next(clock_values))
        dash.update(_snapshot(compressed=500))
        out = dash.update(_snapshot(compressed=20))  # process restarted
        assert "-" not in out.split("chunks compressed")[1].split("\n")[0]
        assert "0/s" in out

    def test_cache_panel_hit_rate(self):
        out = Dashboard().update(_snapshot(hits=75, misses=25,
                                           cache_bytes=2 ** 20))
        assert "75% hit rate" in out
        assert "1.05M" in out  # 2**20 bytes

    def test_latency_panel_quantiles(self):
        hist = {"count": 40, "p50": 0.004, "p95": 0.120}
        out = Dashboard().update(_snapshot(region_hist=hist))
        assert "region read" in out
        assert "4.0ms" in out and "120.0ms" in out and "n=40" in out

    def test_pool_panel_gauges(self):
        out = Dashboard().update(_snapshot(queue=17.0, pool=8.0))
        assert "queue depth" in out and "17" in out
        assert "workers" in out and "8" in out


class TestFormatting:
    def test_fmt_num_scales(self):
        assert _fmt_num(950) == "950"
        assert _fmt_num(1_500) == "1.50k"
        assert _fmt_num(2_300_000) == "2.30M"
        assert _fmt_num(7.5e9) == "7.50G"

    def test_fmt_secs_units(self):
        assert _fmt_secs(0.00042) == "420us"
        assert _fmt_secs(0.035) == "35.0ms"
        assert _fmt_secs(2.5) == "2.50s"
        assert _fmt_secs(float("nan")) == "-"
