"""Unit tests for the tracing core: spans, nesting, and the off switch."""

from __future__ import annotations

import threading
import time

import pytest

from repro.observability import (
    Tracer,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
    use_tracer,
)
from repro.observability.tracer import _NULL_SPAN


def test_disabled_span_is_shared_null_singleton():
    assert get_tracer() is None
    assert not tracing_enabled()
    # The disabled path allocates nothing: same object every call.
    s1 = span("anything", bytes_in=123, foo="bar")
    s2 = span("other")
    assert s1 is s2 is _NULL_SPAN
    with s1 as sp:
        sp.add(k=5)  # no-op, must not raise


def test_use_tracer_installs_and_restores():
    tracer = Tracer()
    assert get_tracer() is None
    with use_tracer(tracer):
        assert get_tracer() is tracer
        assert tracing_enabled()
        with span("work", bytes_in=10) as sp:
            sp.add(bytes_out=4, note="hi")
    assert get_tracer() is None
    assert len(tracer.spans) == 1
    sp = tracer.spans[0]
    assert sp.name == "work"
    assert sp.bytes_in == 10 and sp.bytes_out == 4
    assert sp.meta["note"] == "hi"
    assert sp.dur >= 0.0


def test_use_tracer_restores_on_exception():
    with pytest.raises(RuntimeError):
        with use_tracer(Tracer()):
            raise RuntimeError("boom")
    assert get_tracer() is None


def test_set_tracer_returns_previous():
    t1, t2 = Tracer(), Tracer()
    assert set_tracer(t1) is None
    assert set_tracer(t2) is t1
    assert set_tracer(None) is t2
    assert get_tracer() is None


def test_span_nesting_depth_and_parent():
    tracer = Tracer()
    with use_tracer(tracer):
        with span("outer"):
            with span("inner"):
                with span("leaf"):
                    pass
            with span("inner2"):
                pass
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["outer"].depth == 0
    assert by_name["outer"].parent_id is None
    assert by_name["inner"].depth == 1
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    assert by_name["leaf"].depth == 2
    assert by_name["leaf"].parent_id == by_name["inner"].span_id
    assert by_name["inner2"].parent_id == by_name["outer"].span_id


def test_span_records_duration():
    tracer = Tracer()
    with use_tracer(tracer):
        with span("sleep"):
            time.sleep(0.01)
    assert tracer.spans[0].dur >= 0.009


def test_stage_times_top_level_only():
    tracer = Tracer()
    with use_tracer(tracer):
        with span("dpz.encode"):
            with span("dpz.correction"):
                pass
        with span("dpz.pca"):
            pass
        with span("huffman.encode"):
            pass
    times = tracer.stage_times(prefix="dpz.")
    # Nested dpz.correction must not appear at top level.
    assert set(times) == {"dpz.encode", "dpz.pca"}
    shares = tracer.stage_shares(prefix="dpz.")
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    all_times = tracer.stage_times(prefix="dpz.", top_level_only=False)
    assert "dpz.correction" in all_times


def test_clear():
    tracer = Tracer()
    with use_tracer(tracer):
        with span("a"):
            pass
    assert tracer.spans
    tracer.clear()
    assert tracer.spans == []


def test_thread_safety_of_collection():
    tracer = Tracer()
    n_threads, per_thread = 8, 50

    def work():
        for i in range(per_thread):
            with span("t.work", index=i):
                pass

    with use_tracer(tracer):
        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert len(tracer.spans) == n_threads * per_thread
    ids = [s.span_id for s in tracer.spans]
    assert len(set(ids)) == len(ids), "span ids must be unique across threads"


def test_throughput_property():
    tracer = Tracer()
    with use_tracer(tracer):
        with span("x", bytes_in=1_000_000):
            time.sleep(0.005)
    sp = tracer.spans[0]
    assert sp.throughput_mb_s is not None
    assert sp.throughput_mb_s > 0
    d = sp.to_dict()
    assert d["name"] == "x" and d["bytes_in"] == 1_000_000
