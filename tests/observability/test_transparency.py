"""Observability must be invisible: byte-identity and overhead bounds."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.compressor import DPZCompressor
from repro.core.config import DPZ_L, DPZ_S
from repro.datasets.registry import get_dataset
from repro.observability import (
    Tracer,
    counter_inc,
    gauge_set,
    get_registry,
    observe,
    span,
    use_quality,
    use_tracer,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    get_registry().clear()
    yield
    get_registry().clear()


@pytest.mark.parametrize("config", [DPZ_L, DPZ_S], ids=["dpz-l", "dpz-s"])
def test_archive_byte_identical_with_observability_on(config):
    """Full instrumentation (tracer + metrics + quality telemetry) may
    not change a single output byte, in either direction."""
    data = get_dataset("Isotropic", "small")
    comp = DPZCompressor(config)

    blob_off = comp.compress(data)
    recon_off = DPZCompressor.decompress(blob_off)

    with use_tracer(Tracer()), use_quality():
        blob_on = comp.compress(data)
        recon_on = DPZCompressor.decompress(blob_on)

    assert blob_on == blob_off
    assert np.array_equal(recon_on, recon_off)


def test_quality_pass_does_not_perturb_stats(smooth_2d):
    data = smooth_2d.astype(np.float32)
    comp = DPZCompressor(DPZ_L)
    _, stats_off = comp.compress_with_stats(data)
    with use_tracer(Tracer()), use_quality():
        _, stats_on = comp.compress_with_stats(data)
    assert stats_on.cr == stats_off.cr
    assert stats_on.k == stats_off.k
    assert stats_on.tve_at_k == stats_off.tve_at_k


def test_disabled_overhead_under_one_percent():
    """Analytic bound: per-call cost of every disabled helper, scaled by
    a generous call-site count, stays under 1% of a real 64^3 compress.

    A direct wall-clock A/B diff of two compress runs is noisier than
    the effect being measured, so we bound the overhead instead: each
    disabled helper is a global load + None test + return, and a traced
    run on this field fires well under 500 instrumentation calls.
    Both sides are best-of-N: the bound compares intrinsic costs, and a
    single timing window flakes on a one-off scheduler stall when the
    test runs late in a long suite.
    """
    data = get_dataset("Isotropic", "small")
    comp = DPZCompressor(DPZ_L)
    comp.compress(data)  # warm
    compress_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        comp.compress(data)
        compress_s = min(compress_s, time.perf_counter() - t0)

    n = 50_000
    per_bundle_s = float("inf")
    for _ in range(4):
        t0 = time.perf_counter()
        for _ in range(n):
            span("bench.noop")
            counter_inc("bench.noop")
            gauge_set("bench.noop", 1.0)
            observe("bench.noop", 1.0)
        per_bundle_s = min(per_bundle_s, (time.perf_counter() - t0) / n)

    # A traced compress+decompress on this field opens ~12 spans, ~12
    # histogram observes and a handful of counter/gauge calls, so 200
    # bundles (800 helper calls) is well over 10x anything the pipeline
    # actually executes -- while leaving slack for the CPU throttling
    # that hits tight interpreter loops late in a long suite much
    # harder than the numpy-bound compress baseline.
    bound = 200 * per_bundle_s
    assert bound < 0.01 * compress_s, (
        f"disabled observability bound {bound * 1e6:.1f}us is not <1% of "
        f"compress ({compress_s * 1e3:.1f}ms)")
    # And nothing leaked into the registry while disabled.
    from repro.observability import metrics_snapshot
    assert "bench.noop" not in metrics_snapshot()["counters"]


def test_untraced_parallel_map_overhead_under_one_percent():
    """The telemetry plane must cost nothing on the untraced pooled
    path: no capture registry, no frame, no merge.  Analytic bound as
    above -- per-item dispatch overhead of ``parallel_map`` versus a
    bare loop, scaled to a realistic chunk count, must stay under 1%
    of one real chunked compress."""
    from repro.parallel.executor import ParallelConfig, parallel_map

    data = get_dataset("Isotropic", "small")
    comp = DPZCompressor(DPZ_L)
    comp.compress(data)  # warm
    t0 = time.perf_counter()
    comp.compress(data)
    compress_s = time.perf_counter() - t0

    items = list(range(2_000))
    fn = int  # trivially cheap: the measurement is pure dispatch
    config = ParallelConfig(n_jobs=1)
    parallel_map(fn, items, config=config)  # warm
    t0 = time.perf_counter()
    parallel_map(fn, items, config=config)
    with_map_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    [fn(item) for item in items]
    bare_s = time.perf_counter() - t0

    per_item_overhead = max(with_map_s - bare_s, 0.0) / len(items)
    # A 64^3 field at 16^3 chunks is 64 chunks; bound at 512.
    bound = 512 * per_item_overhead
    assert bound < 0.01 * compress_s, (
        f"untraced parallel_map bound {bound * 1e6:.1f}us is not <1% "
        f"of compress ({compress_s * 1e3:.1f}ms)")
    # And the untraced run left no telemetry behind.
    from repro.observability import metrics_snapshot
    snap = metrics_snapshot()
    assert "worker.snapshots.merged" not in snap["counters"]
    assert "parallel.maps" not in snap["counters"]


def test_server_not_started_costs_nothing():
    """With no telemetry server started there must be no server
    thread, no socket, and -- unless something else imported it -- not
    even the server module."""
    import subprocess
    import sys as _sys
    import threading

    assert not [t for t in threading.enumerate()
                if t.name == "repro-telemetry"]
    # A fresh interpreter importing the package and compressing must
    # never pull in the HTTP machinery.
    code = (
        "import sys\n"
        "import numpy as np\n"
        "from repro.core.compressor import DPZCompressor\n"
        "from repro.core.config import DPZ_L\n"
        "DPZCompressor(DPZ_L).compress("
        "np.random.RandomState(0).rand(16, 16, 16).astype(np.float32))\n"
        "assert 'repro.observability.server' not in sys.modules\n"
        "assert 'http.server' not in sys.modules\n"
    )
    proc = subprocess.run(
        [_sys.executable, "-c", code], capture_output=True, text=True,
        env={"PATH": "", "PYTHONPATH": ":".join(_sys.path)})
    assert proc.returncode == 0, proc.stderr
