"""Observability must be invisible: byte-identity and overhead bounds."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.compressor import DPZCompressor
from repro.core.config import DPZ_L, DPZ_S
from repro.datasets.registry import get_dataset
from repro.observability import (
    Tracer,
    counter_inc,
    gauge_set,
    get_registry,
    observe,
    span,
    use_quality,
    use_tracer,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    get_registry().clear()
    yield
    get_registry().clear()


@pytest.mark.parametrize("config", [DPZ_L, DPZ_S], ids=["dpz-l", "dpz-s"])
def test_archive_byte_identical_with_observability_on(config):
    """Full instrumentation (tracer + metrics + quality telemetry) may
    not change a single output byte, in either direction."""
    data = get_dataset("Isotropic", "small")
    comp = DPZCompressor(config)

    blob_off = comp.compress(data)
    recon_off = DPZCompressor.decompress(blob_off)

    with use_tracer(Tracer()), use_quality():
        blob_on = comp.compress(data)
        recon_on = DPZCompressor.decompress(blob_on)

    assert blob_on == blob_off
    assert np.array_equal(recon_on, recon_off)


def test_quality_pass_does_not_perturb_stats(smooth_2d):
    data = smooth_2d.astype(np.float32)
    comp = DPZCompressor(DPZ_L)
    _, stats_off = comp.compress_with_stats(data)
    with use_tracer(Tracer()), use_quality():
        _, stats_on = comp.compress_with_stats(data)
    assert stats_on.cr == stats_off.cr
    assert stats_on.k == stats_off.k
    assert stats_on.tve_at_k == stats_off.tve_at_k


def test_disabled_overhead_under_one_percent():
    """Analytic bound: per-call cost of every disabled helper, scaled by
    a generous call-site count, stays under 1% of a real 64^3 compress.

    A direct wall-clock A/B diff of two compress runs is noisier than
    the effect being measured, so we bound the overhead instead: each
    disabled helper is a global load + None test + return, and a traced
    run on this field fires well under 500 instrumentation calls.
    """
    data = get_dataset("Isotropic", "small")
    comp = DPZCompressor(DPZ_L)
    comp.compress(data)  # warm
    t0 = time.perf_counter()
    comp.compress(data)
    compress_s = time.perf_counter() - t0

    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        span("bench.noop")
        counter_inc("bench.noop")
        gauge_set("bench.noop", 1.0)
        observe("bench.noop", 1.0)
    per_bundle_s = (time.perf_counter() - t0) / n

    # 500 call sites x (span + counter + gauge + histogram) per run is
    # several times anything the pipeline actually executes.
    bound = 500 * per_bundle_s
    assert bound < 0.01 * compress_s, (
        f"disabled observability bound {bound * 1e6:.1f}us is not <1% of "
        f"compress ({compress_s * 1e3:.1f}ms)")
    # And nothing leaked into the registry while disabled.
    from repro.observability import metrics_snapshot
    assert "bench.noop" not in metrics_snapshot()["counters"]
