"""Tests for balanced chunk-range computation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.parallel.chunking import chunk_ranges, chunk_slices


def test_even_split():
    assert chunk_ranges(10, 2) == [(0, 5), (5, 10)]


def test_remainder_spread():
    ranges = chunk_ranges(10, 3)
    sizes = [b - a for a, b in ranges]
    assert sorted(sizes, reverse=True) == sizes
    assert max(sizes) - min(sizes) <= 1


def test_more_chunks_than_items():
    ranges = chunk_ranges(3, 10)
    assert len(ranges) == 3
    assert all(b - a == 1 for a, b in ranges)


def test_zero_total():
    assert chunk_ranges(0, 4) == []


def test_single_chunk():
    assert chunk_ranges(7, 1) == [(0, 7)]


def test_invalid_args():
    with pytest.raises(ConfigError):
        chunk_ranges(-1, 2)
    with pytest.raises(ConfigError):
        chunk_ranges(5, 0)


def test_slices_match_ranges():
    slices = chunk_slices(11, 4)
    ranges = chunk_ranges(11, 4)
    assert [(s.start, s.stop) for s in slices] == ranges


@given(st.integers(0, 10_000), st.integers(1, 64))
def test_partition_property(total, chunks):
    """Ranges form an exact, ordered, non-overlapping partition."""
    ranges = chunk_ranges(total, chunks)
    covered = 0
    prev_end = 0
    for a, b in ranges:
        assert a == prev_end and b > a
        covered += b - a
        prev_end = b
    assert covered == total
