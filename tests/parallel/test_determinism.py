"""Parallelism must not change results.

DPZ chunks work row-wise and reassembles in task order, so archives
must be byte-identical whatever ``n_jobs`` is -- serial (1), a fixed
thread count (2), or auto-sized (0).  Anything else would make
compression irreproducible across machines.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.compressor import DPZCompressor
from repro.core.config import DPZ_L, DPZ_S
from repro.observability import Tracer, use_tracer
from repro.parallel.executor import ParallelConfig, parallel_map


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(20260805)
    x = np.linspace(0, 6 * np.pi, 48)
    base = np.sin(x)[:, None, None] * np.cos(x)[None, :, None] * x[None, None, :]
    return (base + 0.05 * rng.standard_normal((48, 48, 48))).astype(np.float32)


@pytest.mark.parametrize("config", [DPZ_L, DPZ_S], ids=["dpz-l", "dpz-s"])
def test_dpz_archive_identical_across_n_jobs(field, config):
    blobs = {}
    for n_jobs in (1, 2, 0):
        cfg = dataclasses.replace(config, n_jobs=n_jobs)
        blobs[n_jobs] = DPZCompressor(cfg).compress(field)
    assert blobs[1] == blobs[2], "n_jobs=2 produced a different archive"
    assert blobs[1] == blobs[0], "n_jobs=0 (auto) produced a different archive"


def test_dpz_archive_identical_under_tracing(field):
    cfg = dataclasses.replace(DPZ_L, n_jobs=2)
    comp = DPZCompressor(cfg)
    plain = comp.compress(field)
    with use_tracer(Tracer()):
        traced = comp.compress(field)
    assert plain == traced, "tracing changed the compressed output"


@pytest.mark.parametrize("n_jobs", [1, 2, 0])
def test_parallel_map_matches_serial(n_jobs):
    rng = np.random.default_rng(99)
    items = [rng.standard_normal(64) for _ in range(17)]
    expected = [float(np.sum(np.sort(a))) for a in items]
    got = parallel_map(lambda a: float(np.sum(np.sort(a))), items,
                       config=ParallelConfig(n_jobs=n_jobs, min_chunk=1))
    assert got == expected


def test_parallel_map_preserves_order_with_uneven_work():
    # Later items finish first when earlier ones are heavier; results
    # must still come back in task order.
    def work(n):
        acc = 0
        for i in range(n * 1000):
            acc += i
        return n

    items = list(range(20, 0, -1))
    got = parallel_map(work, items, config=ParallelConfig(n_jobs=4, min_chunk=1))
    assert got == items
