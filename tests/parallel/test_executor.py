"""Tests for the ordered parallel map."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigError
from repro.parallel.executor import ParallelConfig, parallel_map, resolve_jobs


def test_serial_matches_map():
    items = list(range(20))
    assert parallel_map(lambda x: x * x, items) == [x * x for x in items]


def test_parallel_preserves_order():
    def jittered(x):
        time.sleep(0.001 * (x % 3))
        return x * 2

    items = list(range(32))
    out = parallel_map(jittered, items,
                       config=ParallelConfig(n_jobs=4, min_chunk=1))
    assert out == [x * 2 for x in items]


def test_parallel_actually_uses_threads():
    seen = set()

    def record(x):
        seen.add(threading.get_ident())
        time.sleep(0.005)
        return x

    parallel_map(record, list(range(16)),
                 config=ParallelConfig(n_jobs=4, min_chunk=1))
    assert len(seen) > 1


def test_small_input_runs_serially():
    seen = set()

    def record(x):
        seen.add(threading.get_ident())
        return x

    parallel_map(record, [1, 2],
                 config=ParallelConfig(n_jobs=8, min_chunk=4))
    assert seen == {threading.get_ident()}


def test_exceptions_propagate():
    def boom(x):
        if x == 5:
            raise ValueError("boom")
        return x

    with pytest.raises(ValueError):
        parallel_map(boom, list(range(10)),
                     config=ParallelConfig(n_jobs=2, min_chunk=1))


class _ChunkExplosion(RuntimeError):
    """A worker failure type the pool must not launder."""


def test_original_exception_type_and_message_survive():
    # The *caller's* exception class (not a pool/broken-executor
    # wrapper) must cross the thread boundary, message intact, for
    # both the untraced fast path and the traced path.
    from repro.observability import Tracer, use_tracer

    def boom(x):
        if x == 3:
            raise _ChunkExplosion(f"chunk {x} exploded")
        return x

    cfg = ParallelConfig(n_jobs=4, min_chunk=1)
    with pytest.raises(_ChunkExplosion, match="chunk 3 exploded"):
        parallel_map(boom, list(range(8)), config=cfg)
    with use_tracer(Tracer()):
        with pytest.raises(_ChunkExplosion, match="chunk 3 exploded"):
            parallel_map(boom, list(range(8)), config=cfg)


def test_failed_map_does_not_poison_shared_pool():
    # The process-lifetime pool is reused across calls; a raising
    # worker must not wedge it for subsequent maps (same or larger
    # worker count, which exercises both reuse and pool growth).
    def boom(x):
        if x % 2:
            raise _ChunkExplosion("odd chunk")
        return x

    for _ in range(3):
        with pytest.raises(_ChunkExplosion):
            parallel_map(boom, list(range(8)),
                         config=ParallelConfig(n_jobs=2, min_chunk=1))
        out = parallel_map(lambda x: x + 1, list(range(16)),
                           config=ParallelConfig(n_jobs=4, min_chunk=1))
        assert out == [x + 1 for x in range(16)]


def test_empty_items():
    assert parallel_map(lambda x: x, []) == []


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1


def test_invalid_config():
    with pytest.raises(ConfigError):
        ParallelConfig(n_jobs=-1)
    with pytest.raises(ConfigError):
        ParallelConfig(min_chunk=0)


def test_tiny_list_bypass_counted():
    from repro.observability import (
        Tracer,
        counters_snapshot,
        metrics_reset,
        use_tracer,
    )
    with use_tracer(Tracer()):
        metrics_reset()
        parallel_map(lambda x: x, [1, 2, 3],
                     config=ParallelConfig(n_jobs=8, min_chunk=4))
        assert counters_snapshot()["parallel.map.bypassed"] == 1
        # Serial-by-request and genuinely parallel maps do not count.
        metrics_reset()
        parallel_map(lambda x: x, [1, 2, 3],
                     config=ParallelConfig(n_jobs=1, min_chunk=4))
        parallel_map(lambda x: x, list(range(8)),
                     config=ParallelConfig(n_jobs=4, min_chunk=4))
        assert "parallel.map.bypassed" not in counters_snapshot()
