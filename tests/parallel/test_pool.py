"""Tests for the process-lifetime executor pool and worker capping."""

from __future__ import annotations

import threading

import pytest

from repro.errors import CodecError
from repro.observability import (
    Tracer,
    counters_reset,
    counters_snapshot,
    use_tracer,
)
from repro.parallel.executor import (
    ParallelConfig,
    parallel_map,
    shutdown_pool,
)


@pytest.fixture(autouse=True)
def _fresh_pool():
    shutdown_pool()
    counters_reset()
    yield
    shutdown_pool()


def test_pool_reused_across_calls():
    # Counters are gated on tracing, like every observability hook.
    cfg = ParallelConfig(n_jobs=2, min_chunk=1)
    with use_tracer(Tracer()):
        for _ in range(3):
            got = parallel_map(lambda x: x * x, list(range(8)), config=cfg)
            assert got == [x * x for x in range(8)]
    counters = counters_snapshot()
    assert counters.get("parallel.pool.created") == 1
    assert counters.get("parallel.pool.reused") == 2


def test_pool_grows_by_replacement():
    with use_tracer(Tracer()):
        parallel_map(lambda x: x, list(range(8)),
                     config=ParallelConfig(n_jobs=2, min_chunk=1))
        parallel_map(lambda x: x, list(range(8)),
                     config=ParallelConfig(n_jobs=4, min_chunk=1))
        # Shrinking requests reuse the larger pool.
        parallel_map(lambda x: x, list(range(8)),
                     config=ParallelConfig(n_jobs=3, min_chunk=1))
    counters = counters_snapshot()
    assert counters.get("parallel.pool.created") == 2
    assert counters.get("parallel.pool.reused") == 1


def test_auto_mode_capped_by_items_before_serial_decision():
    """n_jobs=0 with 2 items is a 2-worker job: min_chunk=4 => serial.

    Pre-fix, the serial decision saw the uncapped cpu_count and a
    many-core box took the pool path on tiny inputs.
    """
    tracer = Tracer()
    with use_tracer(tracer):
        got = parallel_map(lambda x: x + 1, [1, 2],
                           config=ParallelConfig(n_jobs=0, min_chunk=4))
    assert got == [2, 3]
    maps = [s for s in tracer.spans if s.name == "parallel.map"]
    assert len(maps) == 1
    assert maps[0].meta["serial"] is True
    assert maps[0].meta["workers"] == 1
    # No pool was touched.
    counters = counters_snapshot()
    assert "parallel.pool.created" not in counters


def test_auto_mode_two_items_small_min_chunk_uses_two_workers():
    tracer = Tracer()
    with use_tracer(tracer):
        got = parallel_map(lambda x: x + 1, [1, 2],
                           config=ParallelConfig(n_jobs=0, min_chunk=1))
    assert got == [2, 3]
    maps = [s for s in tracer.spans if s.name == "parallel.map"]
    # Single-core hosts legitimately resolve to 1 worker (serial).
    import os
    expect_workers = min(os.cpu_count() or 1, 2)
    assert maps[0].meta["workers"] == expect_workers


def test_nested_parallel_map_does_not_deadlock():
    cfg = ParallelConfig(n_jobs=2, min_chunk=1)

    def outer(i):
        return sum(parallel_map(lambda x: x * i, [1, 2, 3], config=cfg))

    got = parallel_map(outer, list(range(6)), config=cfg)
    assert got == [6 * i for i in range(6)]


def test_exceptions_propagate_in_task_order():
    cfg = ParallelConfig(n_jobs=2, min_chunk=1)

    def boom(x):
        if x % 2:
            raise CodecError(f"bad item {x}")
        return x

    with pytest.raises(CodecError, match="bad item 1"):
        parallel_map(boom, list(range(8)), config=cfg)


def test_pool_results_ordered_under_uneven_work():
    import time

    def slow_first(x):
        time.sleep(0.02 if x == 0 else 0)
        return x

    got = parallel_map(slow_first, list(range(10)),
                       config=ParallelConfig(n_jobs=4, min_chunk=1))
    assert got == list(range(10))


def test_shutdown_pool_allows_fresh_start():
    cfg = ParallelConfig(n_jobs=2, min_chunk=1)
    with use_tracer(Tracer()):
        parallel_map(lambda x: x, list(range(8)), config=cfg)
        shutdown_pool()
        parallel_map(lambda x: x, list(range(8)), config=cfg)
    assert counters_snapshot().get("parallel.pool.created") == 2


def test_pool_survives_worker_thread_reentry():
    """Worker threads route nested maps through transient pools."""
    cfg = ParallelConfig(n_jobs=2, min_chunk=1)
    seen = []

    def inner(x):
        seen.append(threading.current_thread().name)
        return x

    def outer(i):
        return parallel_map(inner, [i, i + 1], config=cfg)

    with use_tracer(Tracer()):
        got = parallel_map(outer, [10, 20], config=cfg)
    assert got == [[10, 11], [20, 21]]
    counters = counters_snapshot()
    assert counters.get("parallel.pool.nested", 0) >= 1
    # Shared pool was created exactly once (outer call).
    assert counters.get("parallel.pool.created") == 1
