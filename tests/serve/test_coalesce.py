"""Singleflight semantics of the coalescing chunk cache."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.observability import get_registry
from repro.serve.coalesce import CoalescingChunkCache


@pytest.fixture(autouse=True)
def _fresh_registry():
    get_registry().clear()
    yield
    get_registry().clear()


def test_first_miss_claims():
    cache = CoalescingChunkCache(1 << 20)
    assert cache.get(("f", 0)) is None
    assert cache.inflight() == 1


def test_put_resolves_and_caches():
    cache = CoalescingChunkCache(1 << 20)
    assert cache.get(("f", 0)) is None
    arr = cache.put(("f", 0), np.arange(4.0))
    assert cache.inflight() == 0
    hit = cache.get(("f", 0))
    assert hit is arr
    assert not hit.flags.writeable


def test_waiter_receives_leaders_decode():
    cache = CoalescingChunkCache(1 << 20, wait_timeout=10.0)
    assert cache.get(("f", 0)) is None  # this thread claims
    results = []

    def waiter():
        results.append(cache.get(("f", 0)))

    t = threading.Thread(target=waiter)
    t.start()
    # Give the waiter time to park on the flight, then resolve it.
    import time
    for _ in range(100):
        if cache.inflight() == 1 and t.is_alive():
            break
        time.sleep(0.01)
    stored = cache.put(("f", 0), np.arange(8.0))
    t.join(timeout=10.0)
    assert not t.is_alive()
    assert results and results[0] is stored


def test_waiter_gets_value_even_with_zero_budget():
    """max_bytes=0 disables the LRU but not the flight handover."""
    cache = CoalescingChunkCache(0, wait_timeout=10.0)
    assert cache.get(("f", 0)) is None
    results = []
    t = threading.Thread(
        target=lambda: results.append(cache.get(("f", 0))))
    t.start()
    import time
    time.sleep(0.05)
    stored = cache.put(("f", 0), np.arange(8.0))
    t.join(timeout=10.0)
    assert results and results[0] is stored
    # The LRU itself kept nothing: a fresh get claims anew.
    assert cache.get(("f", 0)) is None


def test_cancel_wakes_waiter_empty_handed():
    cache = CoalescingChunkCache(1 << 20, wait_timeout=10.0)
    assert cache.get(("f", 0)) is None
    results = []
    t = threading.Thread(
        target=lambda: results.append(cache.get(("f", 0))))
    t.start()
    import time
    time.sleep(0.05)
    cache.cancel(("f", 0))
    t.join(timeout=10.0)
    assert not t.is_alive()
    # Waiter got None: it now owns the retry (and registered a fresh
    # flight doing so).
    assert results == [None]


def test_cancel_without_claim_is_noop():
    cache = CoalescingChunkCache(1 << 20)
    cache.cancel(("f", 99))  # never claimed; must not raise


def test_concurrent_misses_coalesce_to_one_decode(rng):
    """N threads racing a cold key -> far fewer decodes than threads."""
    cache = CoalescingChunkCache(1 << 20, wait_timeout=10.0)
    chunk = rng.standard_normal(64)
    decodes = []
    lock = threading.Lock()
    barrier = threading.Barrier(8)
    results = []

    def reader():
        barrier.wait()
        got = cache.get(("f", 0))
        if got is None:  # we own the decode
            with lock:
                decodes.append(1)
            got = cache.put(("f", 0), chunk)
        with lock:
            results.append(got)

    threads = [threading.Thread(target=reader) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert len(results) == 8
    for got in results:
        np.testing.assert_array_equal(got, chunk)
    # With the flight in place the common case is exactly one decode;
    # a scheduler pathologically serializing threads can still give a
    # couple, but never one per thread.
    assert 1 <= len(decodes) < 8


def test_clear_wakes_parked_waiters():
    cache = CoalescingChunkCache(1 << 20, wait_timeout=10.0)
    assert cache.get(("f", 0)) is None
    t = threading.Thread(target=lambda: cache.get(("f", 0)))
    t.start()
    import time
    time.sleep(0.05)
    cache.clear()
    t.join(timeout=10.0)
    assert not t.is_alive()


def test_coalesce_metrics_flow_under_tracer():
    from repro.observability import Tracer, use_tracer

    cache = CoalescingChunkCache(1 << 20, wait_timeout=10.0)
    with use_tracer(Tracer()):
        assert cache.get(("f", 0)) is None
        done = threading.Event()

        def waiter():
            cache.get(("f", 0))
            done.set()

        t = threading.Thread(target=waiter)
        t.start()
        import time
        time.sleep(0.05)
        cache.put(("f", 0), np.arange(4.0))
        assert done.wait(10.0)
        t.join(timeout=10.0)
    from repro.observability import metrics_snapshot
    snap = metrics_snapshot()
    assert snap["counters"].get("serve.coalesce.waits", 0) >= 1
    assert snap["counters"].get("serve.coalesce.hits", 0) >= 1
