"""Pure-function contract for the serve wire protocol."""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.errors import ConfigError, FormatError
from repro.serve.protocol import (
    FRAME_MAGIC,
    RequestFailed,
    decode_region_frame,
    encode_region_frame,
    error_body,
    format_slices,
    parse_slices,
    parse_target,
)


class TestParseTarget:
    def test_fixed_routes(self):
        assert parse_target("/healthz").kind == "healthz"
        assert parse_target("/metrics").kind == "metrics"
        assert parse_target("/").kind == "metrics"
        assert parse_target("/metrics.json").kind == "metrics_json"
        assert parse_target("/v1/stores").kind == "stores"

    def test_manifest_route(self):
        r = parse_target("/v1/stores/snap/manifest")
        assert (r.kind, r.alias) == ("manifest", "snap")

    def test_region_route_with_query(self):
        r = parse_target(
            "/v1/stores/snap/fields/vx/region?slices=0:16,8:24,3")
        assert (r.kind, r.alias, r.field) == ("region", "snap", "vx")
        assert r.query["slices"] == "0:16,8:24,3"

    def test_percent_decoding(self):
        r = parse_target("/v1/stores/my%20run/fields/v%2Fx/region")
        assert r.alias == "my run"
        assert r.field == "v/x"

    def test_trailing_slash_tolerated(self):
        assert parse_target("/v1/stores/").kind == "stores"

    @pytest.mark.parametrize("target", [
        "/nope", "/v1", "/v1/stores/a/b", "/v1/stores//manifest",
        "/v1/stores/a/fields/b/nope", "/v1/stores/a/fields//region",
    ])
    def test_unknown_paths_404(self, target):
        with pytest.raises(RequestFailed) as ei:
            parse_target(target)
        assert ei.value.status == 404


class TestSlices:
    def test_roundtrip(self):
        spec = "0:16,8:24,3,:"
        region = parse_slices(spec)
        assert region == (slice(0, 16), slice(8, 24), 3,
                          slice(None, None))
        assert format_slices(region) == spec

    def test_open_bounds(self):
        assert parse_slices("4:") == (slice(4, None),)
        assert parse_slices(":9") == (slice(None, 9),)

    @pytest.mark.parametrize("bad", ["a:b", "1:2:3x", "", "1,,2"])
    def test_malformed_raises_config(self, bad):
        with pytest.raises(ConfigError):
            parse_slices(bad)

    def test_format_rejects_steps(self):
        with pytest.raises(ConfigError):
            format_slices((slice(0, 8, 2),))

    def test_format_rejects_empty(self):
        with pytest.raises(ConfigError):
            format_slices(())


class TestRegionFrame:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_roundtrip(self, rng, dtype):
        arr = rng.standard_normal((5, 7)).astype(dtype)
        buf = encode_region_frame("snap", "vx", arr)
        header, out = decode_region_frame(buf)
        assert header["store"] == "snap"
        assert header["field"] == "vx"
        assert out.dtype == np.dtype(dtype).newbyteorder("<")
        np.testing.assert_array_equal(out, arr)

    def test_scalar_region(self):
        arr = np.array(3.5, dtype=np.float32)
        _, out = decode_region_frame(
            encode_region_frame("s", "f", arr))
        assert out.shape == ()
        assert float(out) == 3.5

    def test_magic_first(self):
        buf = encode_region_frame(
            "s", "f", np.zeros(3, dtype=np.float32))
        assert buf[:4] == FRAME_MAGIC

    def test_rejects_bad_magic(self):
        with pytest.raises(FormatError, match="magic"):
            decode_region_frame(b"NOPE" + b"\x00" * 16)

    def test_rejects_truncated_payload(self):
        buf = encode_region_frame(
            "s", "f", np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(FormatError):
            decode_region_frame(buf[:-8])

    def test_rejects_truncated_head(self):
        with pytest.raises(FormatError, match="truncated"):
            decode_region_frame(b"DP")

    def test_rejects_header_payload_mismatch(self):
        header = json.dumps({
            "store": "s", "field": "f", "shape": [2],
            "dtype": "<f4", "nbytes": 8}).encode()
        buf = (struct.pack("<4sI", FRAME_MAGIC, len(header))
               + header + b"\x00" * 4)
        with pytest.raises(FormatError, match="payload"):
            decode_region_frame(buf)

    def test_rejects_non_float_dtype(self):
        with pytest.raises(ConfigError):
            encode_region_frame("s", "f", np.zeros(3, dtype=np.int32))

    def test_rejects_giant_header_length(self):
        buf = struct.pack("<4sI", FRAME_MAGIC, 1 << 30) + b"x" * 64
        with pytest.raises(FormatError, match="cap"):
            decode_region_frame(buf)


def test_error_body_shape():
    body = json.loads(error_body(503, "busy", retry_after=0.25))
    assert body == {"error": "busy", "status": 503,
                    "retry_after": 0.25}
