"""End-to-end contract for the ``dpz serve`` server and client."""

from __future__ import annotations

import json
import os
import threading

import numpy as np
import pytest

from repro.errors import ConfigError, ServeBusyError
from repro.observability import get_registry
from repro.serve import (
    BackgroundServer,
    RequestFailed,
    ServeApp,
    ServeClient,
    StoreRegistry,
)
from repro.serve.registry import parse_store_spec
from repro.store import Store


@pytest.fixture(autouse=True)
def _fresh_registry():
    get_registry().clear()
    yield
    get_registry().clear()


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    rng = np.random.default_rng(7)
    path = str(tmp_path_factory.mktemp("serve") / "snap.dpzs")
    field = rng.standard_normal((32, 32, 32)).astype(np.float32)
    plane = rng.standard_normal((48, 48)).astype(np.float64)
    with Store.create(path) as st:
        st.add("vx", field, codec="sz", eps=1e-3,
               chunk_shape=(16, 16, 16))
        st.add("rho", plane, codec="raw", chunk_shape=(16, 16))
    return path


@pytest.fixture
def server(store_path):
    registry = StoreRegistry([store_path], cache_bytes=1 << 24)
    app = ServeApp(registry, port=0, workers=2)
    with BackgroundServer(app) as srv:
        yield srv.app


@pytest.fixture
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


class TestSpecParsing:
    def test_bare_path_uses_stem(self):
        assert parse_store_spec("runs/snap.dpzs") == (
            "snap", "runs/snap.dpzs")

    def test_alias_equals_path(self):
        assert parse_store_spec("hot=a/b.dpzs") == ("hot", "a/b.dpzs")

    @pytest.mark.parametrize("bad", ["=x", "a=", "a/b=c"])
    def test_bad_specs(self, bad):
        with pytest.raises(ConfigError):
            parse_store_spec(bad)

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            StoreRegistry(["a/snap.dpzs", "b/snap.dpzs"],
                          cache_bytes=0)

    def test_empty_registry_rejected(self):
        with pytest.raises(ConfigError):
            StoreRegistry([], cache_bytes=0)


class TestRoutes:
    def test_stores_lists_aliases(self, client):
        assert client.stores() == ["snap"]

    def test_manifest(self, client):
        man = client.manifest("snap")
        names = [f["name"] for f in man["fields"]]
        assert names == ["vx", "rho"]
        assert man["alias"] == "snap"
        assert man["total_cr"] > 0

    def test_healthz(self, client):
        h = client.healthz()
        assert h["status"] == "ok"
        assert h["serving"] == ["snap"]
        assert h["workers"] == 2

    def test_metrics_text_and_json(self, client):
        client.stores()
        text = client.metrics_text()
        assert "serve_requests" in text.replace(".", "_") or \
            "serve.requests" in text
        snap = client.metrics_json()
        assert snap["counters"]["serve.requests"] >= 1

    def test_unknown_store_404(self, client):
        with pytest.raises(RequestFailed) as ei:
            client.manifest("nope")
        assert ei.value.status == 404

    def test_unknown_field_404(self, client):
        with pytest.raises(RequestFailed) as ei:
            client.region("snap", "nope", (slice(0, 4),) * 3)
        assert ei.value.status == 404

    def test_unknown_path_404_lists_routes(self, client):
        status, _, body = client._get("/v2/whatever")
        assert status == 404
        assert "/v1/stores" in json.loads(body)["routes"]

    def test_bad_region_400(self, client):
        with pytest.raises(RequestFailed) as ei:
            client.region("snap", "vx", (slice(0, 4),) * 9)
        assert ei.value.status == 400

    def test_missing_slices_400(self, client):
        status, _, body = client._get(
            "/v1/stores/snap/fields/vx/region")
        assert status == 400
        assert "slices" in json.loads(body)["error"]

    def test_malformed_slices_400(self, client):
        status, _, _ = client._get(
            "/v1/stores/snap/fields/vx/region?slices=a:b")
        assert status == 400


class TestRegionReads:
    @pytest.mark.parametrize("field,region", [
        ("vx", (slice(0, 16), slice(0, 16), slice(0, 16))),
        ("vx", (slice(3, 29), slice(10, 22), 7)),
        ("vx", (5, 6, slice(None, None))),
        ("rho", (slice(0, 48), slice(12, 13))),
        ("rho", (slice(7, 41), 3)),
    ])
    def test_bit_identical_to_in_process(self, client, store_path,
                                         field, region):
        served = client.region("snap", field, region)
        local = Store.open(store_path).get_region(field, region)
        assert served.dtype == local.dtype.newbyteorder("<")
        np.testing.assert_array_equal(served, local)

    def test_keep_alive_reuses_connection(self, client):
        for _ in range(3):
            client.region("snap", "vx", (slice(0, 8),) * 3)
        snap = client.metrics_json()
        assert snap["counters"]["serve.requests"] >= 4
        assert snap["counters"]["serve.bytes.sent"] > 0


class TestConcurrency:
    def test_hammer_bit_identical_and_coalesced(self, server,
                                                store_path):
        local = Store.open(store_path)
        regions = [
            (slice(0, 16), slice(0, 16), slice(0, 16)),
            (slice(16, 32), slice(0, 16), slice(0, 16)),
            (slice(4, 28), slice(4, 28), 9),
        ]
        ref = [local.get_region("vx", r) for r in regions]
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                with ServeClient(server.host, server.port) as c:
                    for _ in range(10):
                        i = int(rng.integers(len(regions)))
                        try:
                            arr = c.region("snap", "vx", regions[i])
                        except ServeBusyError:
                            continue  # shed under load: legitimate
                        if not np.array_equal(arr, ref[i]):
                            errors.append(regions[i])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors
        with ServeClient(server.host, server.port) as c:
            snap = c.metrics_json()
        assert snap["counters"]["serve.requests"] >= 100
        # The same three chunk-sets were hammered by 12 threads: the
        # LRU (and under races the flights) must have absorbed most
        # decodes.
        assert snap["counters"]["store.cache.hits"] > 0

    def test_backpressure_sheds_503(self, store_path):
        registry = StoreRegistry([store_path], cache_bytes=0)
        app = ServeApp(registry, port=0, workers=1, max_queue=1)
        shed = []
        served = []
        with BackgroundServer(app):
            def worker():
                with ServeClient(app.host, app.port) as c:
                    for _ in range(6):
                        try:
                            c.region("snap", "vx", (slice(0, 32),) * 3)
                            served.append(1)
                        except ServeBusyError as exc:
                            assert exc.retry_after > 0
                            shed.append(1)

            threads = [threading.Thread(target=worker)
                       for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
        assert served  # the server kept making progress
        assert shed    # and shed at least some of the burst


class TestLifecycle:
    def test_draining_refuses_new_requests(self, store_path):
        registry = StoreRegistry([store_path], cache_bytes=0)
        app = ServeApp(registry, port=0, workers=1)
        srv = BackgroundServer(app).start()
        with ServeClient(app.host, app.port) as c:
            c.stores()
        srv.close()
        assert app.draining
        with pytest.raises(Exception):
            ServeClient(app.host, app.port, timeout=2.0).stores()

    def test_close_is_idempotent(self, store_path):
        registry = StoreRegistry([store_path], cache_bytes=0)
        app = ServeApp(registry, port=0, workers=1)
        srv = BackgroundServer(app).start()
        srv.close()
        srv.close()

    def test_port_conflict_is_one_line_config_error(self, store_path):
        registry = StoreRegistry([store_path], cache_bytes=0)
        app = ServeApp(registry, port=0, workers=1)
        with pytest.raises(ConfigError, match="cannot bind serve"):
            ServeApp(StoreRegistry([store_path], cache_bytes=0),
                     host=app.host, port=app.port, workers=1)

    def test_unix_socket_roundtrip(self, store_path, tmp_path):
        sock = str(tmp_path / "dpz.sock")
        registry = StoreRegistry([store_path], cache_bytes=1 << 20)
        app = ServeApp(registry, unix_socket=sock, workers=1)
        assert app.url == f"unix://{sock}"
        with BackgroundServer(app):
            with ServeClient(unix_socket=sock) as c:
                assert c.stores() == ["snap"]
                arr = c.region("snap", "vx", (slice(0, 8),) * 3)
                assert arr.shape == (8, 8, 8)

    def test_tracer_installed_and_restored(self, store_path):
        from repro.observability import get_tracer

        assert get_tracer() is None
        registry = StoreRegistry([store_path], cache_bytes=0)
        app = ServeApp(registry, port=0, workers=1)
        with BackgroundServer(app):
            with ServeClient(app.host, app.port) as c:
                assert c.healthz()["tracing"] is True
        assert get_tracer() is None

    def test_multi_store_aliases(self, store_path, tmp_path):
        other = str(tmp_path / "other.dpzs")
        with Store.create(other) as st:
            st.add("t", np.arange(64.0, dtype=np.float32)
                   .reshape(8, 8), codec="raw", chunk_shape=(4, 4))
        registry = StoreRegistry(
            [store_path, f"hot={other}"], cache_bytes=1 << 20)
        app = ServeApp(registry, port=0, workers=1)
        with BackgroundServer(app):
            with ServeClient(app.host, app.port) as c:
                assert c.stores() == ["snap", "hot"]
                arr = c.region("hot", "t", (slice(0, 8), slice(0, 8)))
                np.testing.assert_array_equal(
                    arr, np.arange(64.0, dtype=np.float32)
                    .reshape(8, 8))

    def test_broken_store_path_502(self, tmp_path):
        missing = str(tmp_path / "missing.dpzs")
        registry = StoreRegistry([missing], cache_bytes=0)
        app = ServeApp(registry, port=0, workers=1)
        with BackgroundServer(app):
            with ServeClient(app.host, app.port) as c:
                with pytest.raises(RequestFailed) as ei:
                    c.manifest("missing")
                assert ei.value.status == 502


class TestCLI:
    def test_serve_wired_into_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "snap.dpzs", "--port", "0", "--workers", "3"])
        assert args.command == "serve"
        assert args.stores == ["snap.dpzs"]
        assert args.workers == 3

    def test_serve_rejects_missing_store_early(self, tmp_path):
        from repro.cli import main

        rc = main(["serve", "alias/bad=x.dpzs"])
        assert rc == 2
