"""Byte-store backend contract tests.

Every backend behind the :class:`repro.store.backends.ByteStore` seam
must agree on the keyspace grammar, the MutableMapping semantics, and
the failure taxonomy (StoreKeyError for missing keys, StoreError for
everything else).  These tests run the same contract against each
backend and then pin down the backend-specific guarantees: the
directory layout's sharding and atomic writes, the single-file
backend's append-only v1 behavior, and ``resolve_backend``'s path
dispatch.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    FormatError,
    ReproError,
    StoreError,
    StoreKeyError,
)
from repro.store import Store
from repro.store.backends import (
    BACKEND_IDS,
    MANIFEST_KEY,
    ByteStore,
    DirectoryStore,
    DpzsFileBackend,
    MemoryStore,
    check_key,
    chunk_key,
    resolve_backend,
)
from repro.store.format import (
    HEADER_SIZE,
    pack_kv_value,
    unpack_kv_value,
)


def make_backend(kind: str, tmp_path, name: str = "s") -> ByteStore:
    """Fresh empty backend of the requested kind under ``tmp_path``."""
    if kind == "memory":
        return MemoryStore()
    if kind == "dir":
        return DirectoryStore(tmp_path / f"{name}.d", create=True)
    return DpzsFileBackend(tmp_path / f"{name}.dpzs", create=True)


KV_BACKENDS = ("memory", "dir")
ALL_BACKENDS = ("memory", "dir", "file")


class TestKeyGrammar:
    @pytest.mark.parametrize("key", [
        "manifest", "chunks/vx/0", "a", "a/b/c-d_e.f", "Z9~!",
    ])
    def test_valid_keys_pass(self, key):
        assert check_key(key) == key

    @pytest.mark.parametrize("key", [
        "", "/a", "a/", "a//b", ".", "..", "a/../b", "a/./b",
        "a\\b", "a\nb", "a\x00b", "café",
    ])
    def test_invalid_keys_raise_store_error(self, key):
        with pytest.raises(StoreError):
            check_key(key)

    @pytest.mark.parametrize("kind", KV_BACKENDS)
    def test_backends_enforce_grammar_on_write(self, kind, tmp_path):
        bk = make_backend(kind, tmp_path)
        with pytest.raises(StoreError):
            bk["../escape"] = b"x"

    def test_chunk_key_shape(self):
        assert chunk_key("vx", 3) == "chunks/vx/3"
        check_key(chunk_key("vx", 3))


class TestMutableMappingContract:
    @pytest.mark.parametrize("kind", KV_BACKENDS)
    def test_set_get_delete_iter(self, kind, tmp_path):
        bk = make_backend(kind, tmp_path)
        bk["manifest"] = b"m"
        bk["chunks/f/0"] = b"\x00\x01"
        bk["chunks/f/1"] = b""
        assert bk["chunks/f/0"] == b"\x00\x01"
        assert bk["chunks/f/1"] == b""
        assert sorted(bk) == ["chunks/f/0", "chunks/f/1", "manifest"]
        assert len(bk) == 3
        assert "manifest" in bk
        assert "chunks/f/9" not in bk
        assert bk.get("chunks/f/9") is None
        del bk["chunks/f/1"]
        assert sorted(bk) == ["chunks/f/0", "manifest"]

    @pytest.mark.parametrize("kind", KV_BACKENDS)
    def test_missing_key_is_storekeyerror(self, kind, tmp_path):
        bk = make_backend(kind, tmp_path)
        with pytest.raises(StoreKeyError) as exc_info:
            bk["chunks/f/0"]
        # The taxonomy type is both a StoreError (repro dispatch) and
        # a KeyError (MutableMapping mixins: .get, in, pop default).
        assert isinstance(exc_info.value, StoreError)
        assert isinstance(exc_info.value, KeyError)
        with pytest.raises(StoreKeyError):
            del bk["chunks/f/0"]

    @pytest.mark.parametrize("kind", KV_BACKENDS)
    def test_overwrite_replaces_value(self, kind, tmp_path):
        bk = make_backend(kind, tmp_path)
        bk["manifest"] = b"old"
        bk["manifest"] = b"new"
        assert bk["manifest"] == b"new"
        assert len(bk) == 1

    @pytest.mark.parametrize("kind", KV_BACKENDS)
    def test_list_prefix(self, kind, tmp_path):
        bk = make_backend(kind, tmp_path)
        for key in ("manifest", "chunks/a/0", "chunks/a/1", "chunks/b/0"):
            bk[key] = b"v"
        assert bk.list_prefix("chunks/a/") == ["chunks/a/0", "chunks/a/1"]
        assert bk.list_prefix("nope/") == []

    @pytest.mark.parametrize("kind", ALL_BACKENDS)
    def test_context_manager_protocol(self, kind, tmp_path):
        with make_backend(kind, tmp_path) as bk:
            bk["manifest"] = b"m"
        # close() must not invalidate simple reads on these backends.
        assert bk["manifest"] == b"m"


class TestDirectoryLayout:
    def test_marker_and_sharded_paths(self, tmp_path):
        root = tmp_path / "s.d"
        bk = DirectoryStore(root, create=True)
        bk["chunks/vx/0"] = b"payload"
        marker = json.loads((root / "meta.json").read_text())
        assert marker["format"] == "dpzs-directory"
        shards = [d for d in os.listdir(root)
                  if (root / d).is_dir() and len(d) == 2]
        assert len(shards) == 1
        (name,) = os.listdir(root / shards[0])
        assert name == "chunks%2Fvx%2F0"
        assert not name.endswith(".tmp")

    def test_escaping_inverts_on_iteration(self, tmp_path):
        bk = DirectoryStore(tmp_path / "s.d", create=True)
        keys = ["chunks/a b/0", "chunks/%41/1", "manifest"]
        for key in keys:
            bk[key] = b"v"
        assert sorted(bk) == sorted(keys)
        assert bk["chunks/a b/0"] == b"v"

    def test_missing_root_without_create(self, tmp_path):
        with pytest.raises(StoreError, match="does not exist"):
            DirectoryStore(tmp_path / "nope.d")

    def test_no_tmp_files_left_behind(self, tmp_path):
        root = tmp_path / "s.d"
        bk = DirectoryStore(root, create=True)
        for i in range(8):
            bk[f"chunks/f/{i}"] = bytes([i]) * 64
        leftovers = [n for _, _, names in os.walk(root)
                     for n in names if n.endswith(".tmp")]
        assert leftovers == []


class TestDpzsFileBackend:
    def test_create_initializes_readable_empty_store(self, tmp_path):
        path = tmp_path / "s.dpzs"
        DpzsFileBackend(path, create=True)
        st = Store.open(path)
        assert st.names() == []

    def test_open_rejects_non_dpzs_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"not a dpzs container, definitely")
        with pytest.raises(FormatError, match="magic"):
            DpzsFileBackend(path)

    def test_open_missing_file(self, tmp_path):
        with pytest.raises(StoreError, match="does not exist"):
            DpzsFileBackend(tmp_path / "missing.dpzs")

    def test_append_only_no_delete(self, tmp_path):
        bk = DpzsFileBackend(tmp_path / "s.dpzs", create=True)
        with pytest.raises(StoreError, match="append-only"):
            del bk[MANIFEST_KEY]

    def test_locate_reports_physical_ranges(self, tmp_path, rng):
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", rng.normal(size=(8, 8)).astype("<f4"),
                   codec="raw", chunk_shape=(8, 8))
        bk = DpzsFileBackend(path)
        key = chunk_key("f", 0)
        loc = bk.locate(key)
        assert loc is not None
        offset, length = loc
        assert offset >= HEADER_SIZE
        with open(path, "rb") as fh:
            fh.seek(offset)
            assert fh.read(length) == bk[key]
        # The manifest locates to exactly what the header promises.
        assert bk.locate(MANIFEST_KEY) is not None

    def test_unframed_values_are_naked_payloads(self, tmp_path):
        bk = DpzsFileBackend(tmp_path / "s.dpzs", create=True)
        assert bk.framed is False
        # Key/value backends are framed by default.
        assert MemoryStore().framed is True

    def test_append_preserves_previous_manifest_bytes(self, tmp_path,
                                                      rng):
        # The durability protocol: a second add never overwrites the
        # bytes the first manifest occupied, so a crash before the
        # header patch leaves the old manifest readable.
        path = tmp_path / "s.dpzs"
        data = rng.normal(size=(8, 8)).astype("<f4")
        with Store.create(path) as st:
            st.add("a", data, codec="raw", chunk_shape=(8, 8))
        bk = DpzsFileBackend(path)
        old_offset, old_length = bk.locate(MANIFEST_KEY)
        old_manifest = bk[MANIFEST_KEY]
        with Store.open(path) as st:
            st.add("b", data * 2, codec="raw", chunk_shape=(8, 8))
        with open(path, "rb") as fh:
            fh.seek(old_offset)
            assert fh.read(old_length) == old_manifest


class TestResolveBackend:
    def test_auto_picks_file_for_plain_path(self, tmp_path):
        bk = resolve_backend(tmp_path / "s.dpzs", create=True)
        assert isinstance(bk, DpzsFileBackend)

    def test_auto_picks_dir_for_existing_directory(self, tmp_path):
        root = tmp_path / "s.d"
        root.mkdir()
        (root / "meta.json").write_text(
            json.dumps({"format": "dpzs-directory", "version": 1}))
        bk = resolve_backend(root)
        assert isinstance(bk, DirectoryStore)

    def test_auto_picks_dir_for_trailing_separator(self, tmp_path):
        bk = resolve_backend(str(tmp_path / "new.d") + "/", create=True)
        assert isinstance(bk, DirectoryStore)

    def test_memory_backend_uses_path_as_label(self):
        bk = resolve_backend("scratch", backend="memory")
        assert isinstance(bk, MemoryStore)
        assert bk.location == "<scratch>"

    def test_unknown_backend_id(self, tmp_path):
        with pytest.raises(ConfigError, match="unknown store backend"):
            resolve_backend(tmp_path / "s", backend="s3")
        assert "auto" in BACKEND_IDS


class TestIntegrityFrame:
    def test_roundtrip(self):
        payload = bytes(range(256))
        assert unpack_kv_value(pack_kv_value(payload)) == payload
        assert unpack_kv_value(pack_kv_value(b"")) == b""

    def test_bit_flip_detected(self):
        framed = bytearray(pack_kv_value(b"hello, chunks"))
        framed[10] ^= 0x20
        with pytest.raises(FormatError, match="CRC32"):
            unpack_kv_value(bytes(framed))

    def test_truncation_detected(self):
        framed = pack_kv_value(b"hello, chunks")
        with pytest.raises(FormatError):
            unpack_kv_value(framed[:5])
        with pytest.raises(FormatError, match="CRC32"):
            unpack_kv_value(framed[:-1])

    def test_bad_magic_detected(self):
        framed = pack_kv_value(b"x")
        with pytest.raises(FormatError, match="magic"):
            unpack_kv_value(b"NOPE" + framed[4:])


class TestStoreOnEveryBackend:
    @pytest.mark.parametrize("kind", ALL_BACKENDS)
    def test_pack_read_region_roundtrip(self, kind, tmp_path, rng):
        data = rng.normal(size=(12, 10)).astype("<f4")
        bk = make_backend(kind, tmp_path)
        with Store.create(bk) as st:
            st.add("f", data, codec="raw", chunk_shape=(5, 4))
        st = Store.open(bk)
        np.testing.assert_array_equal(st.get("f"), data)
        region = (slice(2, 9), slice(3, 10))
        np.testing.assert_array_equal(st.get_region("f", region),
                                      data[region])
        assert st.backend is bk

    @pytest.mark.parametrize("kind", ("dir", "file"))
    def test_reopen_from_path(self, kind, tmp_path, rng):
        data = rng.normal(size=(9, 9)).astype("<f8")
        target = (tmp_path / "s.d" if kind == "dir"
                  else tmp_path / "s.dpzs")
        backend_id = kind
        with Store.create(target, backend=backend_id) as st:
            st.add("f", data, codec="sz", eps=1e-4, chunk_shape=(4, 4))
        st = Store.open(target, backend="auto")
        assert st.names() == ["f"]
        assert np.max(np.abs(st.get("f") - data)) <= 1e-4 * (1 + 1e-12)

    def test_open_empty_backend_is_format_error(self, tmp_path):
        with pytest.raises(FormatError, match="manifest"):
            Store.open(MemoryStore())

    @pytest.mark.parametrize("kind", KV_BACKENDS)
    def test_kv_values_carry_integrity_frame(self, kind, tmp_path, rng):
        bk = make_backend(kind, tmp_path)
        with Store.create(bk) as st:
            st.add("f", rng.normal(size=(6,)).astype("<f4"),
                   codec="raw", chunk_shape=(6,))
        for key in list(bk):
            unpack_kv_value(bk[key])  # must not raise

    @pytest.mark.parametrize("kind", ALL_BACKENDS)
    def test_failed_manifest_write_rolls_back_field(self, kind,
                                                    tmp_path, rng,
                                                    monkeypatch):
        bk = make_backend(kind, tmp_path)
        st = Store.create(bk)
        original_setitem = type(bk).__setitem__

        def exploding(self, key, value):
            if key == MANIFEST_KEY:
                raise StoreError("disk full (simulated)")
            original_setitem(self, key, value)

        monkeypatch.setattr(type(bk), "__setitem__", exploding)
        with pytest.raises(StoreError, match="disk full"):
            st.add("f", rng.normal(size=(4,)).astype("<f4"),
                   codec="raw", chunk_shape=(4,))
        monkeypatch.undo()
        assert st.names() == []
        assert Store.open(bk).names() == []

    @pytest.mark.parametrize("kind", ALL_BACKENDS)
    def test_errors_stay_in_taxonomy(self, kind, tmp_path):
        bk = make_backend(kind, tmp_path)
        try:
            bk["chunks/f/0"]
        except ReproError:
            pass  # the only acceptable failure channel
