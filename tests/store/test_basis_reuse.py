"""Tests for cross-chunk PCA-basis reuse (``repro.store.basis``).

The reuse contract: a cached basis is *verified, never trusted* -- the
compressor projects the chunk, checks the captured energy against the
configured TVE threshold (after checking the basis is orthonormal at
all), and silently refits on any miss.  So reuse can only change how
fast a chunk compresses, never whether its error bound holds.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.api import dpz_decompress, scheme_config
from repro.core.compressor import DPZCompressor
from repro.observability import (
    Tracer,
    counters_snapshot,
    metrics_reset,
    use_tracer,
)
from repro.store import Store
from repro.store.basis import (
    BasisCache,
    compress_dpz,
    representative_index,
)


def sibling_chunks(rng, n_chunks=6, edge=16):
    """Chunks drawn from one smooth field: statistically alike."""
    g = np.linspace(0, 4 * np.pi, edge * n_chunks)
    x = np.linspace(0, 2 * np.pi, edge)
    field = (np.sin(g)[:, None, None]
             * np.cos(x)[None, :, None]
             * np.sin(2 * x)[None, None, :]
             + 0.02 * rng.normal(size=(edge * n_chunks, edge, edge)))
    return [np.ascontiguousarray(field[i * edge:(i + 1) * edge])
            for i in range(n_chunks)]


def rel_l2(a: np.ndarray, b: np.ndarray) -> float:
    energy = float((a.astype("<f8") ** 2).sum())
    resid = float(((a.astype("<f8") - b.astype("<f8")) ** 2).sum())
    return resid / energy if energy > 0 else 0.0


class TestBasisCache:
    def test_write_once_then_sealed(self, rng):
        chunks = sibling_chunks(rng, n_chunks=2)
        cache = BasisCache(chunks[0].shape)
        assert cache.get(chunks[0].shape) is None
        compress_dpz(chunks[0], cache, scheme="s", tve_nines=4)
        first = cache.get(chunks[0].shape)
        assert first is not None
        cache.seal()
        # A fresh fit after sealing must not replace the basis.
        compress_dpz(rng.normal(size=chunks[0].shape), cache,
                     scheme="s", tve_nines=4)
        assert cache.get(chunks[0].shape) is first

    def test_shape_mismatch_returns_none(self, rng):
        cache = BasisCache((16, 16, 16))
        compress_dpz(sibling_chunks(rng, n_chunks=1)[0], cache,
                     scheme="s", tve_nines=4)
        assert cache.get((8, 16, 16)) is None

    def test_representative_index_prefers_middle_full_chunk(self):
        full = (16, 16, 16)
        shapes = [full, full, full, (8, 16, 16)]
        assert representative_index(shapes, full) == 1
        assert representative_index([(8, 16, 16)], full) is None


class TestReuseContract:
    def test_siblings_reuse_and_stay_within_budget(self, rng):
        chunks = sibling_chunks(rng)
        cache = BasisCache(chunks[0].shape)
        tve = 1.0 - 1e-6
        with use_tracer(Tracer()):
            metrics_reset()
            blobs = [compress_dpz(c, cache, scheme="s", tve_nines=6)
                     for c in chunks]
            c = counters_snapshot()
        assert c["store.basis.fits"] == 1
        assert c["store.basis.reuses"] >= 1
        for chunk, blob in zip(chunks, blobs):
            out = dpz_decompress(blob).reshape(chunk.shape)
            assert rel_l2(chunk, out) <= (1.0 - tve) * 4 + 1e-7

    def test_alien_chunk_triggers_refit(self, rng):
        chunks = sibling_chunks(rng, n_chunks=2)
        cache = BasisCache(chunks[0].shape)
        compress_dpz(chunks[0], cache, scheme="s", tve_nines=6)
        cache.seal()
        # White noise shares no structure with the smooth seed chunk:
        # the cached basis cannot clear the threshold, so refit.
        alien = rng.normal(size=chunks[0].shape)
        with use_tracer(Tracer()):
            metrics_reset()
            blob = compress_dpz(alien, cache, scheme="s", tve_nines=6)
            c = counters_snapshot()
        assert c.get("store.basis.refits") == 1
        assert "store.basis.reuses" not in c
        out = dpz_decompress(blob).reshape(alien.shape)
        assert rel_l2(alien, out) <= 1e-5

    def test_junk_basis_rejected_by_gram_check(self, rng):
        # A non-orthonormal basis inflates projected score norms, so a
        # pure energy test could pass it spuriously; the orthonormality
        # (Gram) check must catch it and force a refit.
        chunk = sibling_chunks(rng, n_chunks=1)[0]
        cfg = scheme_config("s", tve_nines=6)
        probe = DPZCompressor(cfg).compress_with_stats(chunk)[1]
        junk = 3.0 * rng.normal(
            size=probe.basis.shape).astype(np.float32)
        blob, stats = DPZCompressor(cfg).compress_with_stats(
            chunk, reuse_basis=junk)
        assert not stats.basis_reused
        out = dpz_decompress(blob).reshape(chunk.shape)
        assert rel_l2(chunk, out) <= 1e-5

    def test_reuse_declined_when_standardizing(self, rng):
        chunk = sibling_chunks(rng, n_chunks=1)[0]
        cfg = scheme_config("s", tve_nines=6)
        probe = DPZCompressor(cfg).compress_with_stats(chunk)[1]
        std_cfg = dataclasses.replace(
            scheme_config("s", tve_nines=6), standardize="always")
        _, stats = DPZCompressor(std_cfg).compress_with_stats(
            chunk, reuse_basis=probe.basis)
        assert not stats.basis_reused


class TestStoreIntegration:
    def test_pack_reuses_across_chunks(self, rng, tmp_path):
        chunks = sibling_chunks(rng, n_chunks=4)
        field = np.concatenate(chunks, axis=0)
        with use_tracer(Tracer()):
            metrics_reset()
            with Store.create(tmp_path / "s.dpzs") as st:
                st.add("f", field, codec="dpz", chunk_shape=(16, 16, 16),
                       scheme="s", tve_nines=6)
            c = counters_snapshot()
        assert c["store.basis.fits"] == 1
        assert c["store.basis.reuses"] >= 1

    def test_pack_bytes_independent_of_n_jobs(self, rng, tmp_path):
        chunks = sibling_chunks(rng, n_chunks=4)
        field = np.concatenate(chunks, axis=0)

        def payload_bytes(n_jobs: int) -> list[bytes]:
            path = tmp_path / f"s{n_jobs}.dpzs"
            with Store.create(path) as st:
                st.add("f", field, codec="dpz",
                       chunk_shape=(16, 16, 16), n_jobs=n_jobs,
                       scheme="s", tve_nines=6)
            return [p.read_bytes()
                    for p in sorted(path.rglob("*")) if p.is_file()]

        assert payload_bytes(1) == payload_bytes(4)


@settings(max_examples=20)
@given(seed=hst.integers(0, 2**31 - 1), nines=hst.integers(2, 6))
def test_property_reuse_never_violates_tve(seed, nines):
    # Property (issue acceptance): whatever the chunks look like and
    # whatever the threshold, packing with basis reuse decodes within
    # the configured energy budget on every chunk.
    rng = np.random.default_rng(seed)
    chunks = sibling_chunks(rng, n_chunks=3, edge=8)
    cache = BasisCache(chunks[0].shape)
    budget = 10.0 ** -nines
    for chunk in chunks:
        blob = compress_dpz(chunk, cache, scheme="s", tve_nines=nines)
        out = dpz_decompress(blob).reshape(chunk.shape)
        assert rel_l2(chunk, out) <= budget * 4 + 1e-7
