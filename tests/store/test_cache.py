"""Tests for the decoded-chunk LRU cache and its store integration.

The acceptance bar (mirrored from the issue):

* eviction is least-recently-used and respects the byte budget,
* appending a field invalidates its cached chunks,
* warm (cached) region reads are bit-identical to cold reads for every
  registered codec, and
* concurrent readers hammering one store handle never see corrupt data.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.archive import CODECS
from repro.errors import ConfigError
from repro.observability import (
    Tracer,
    counters_snapshot,
    metrics_reset,
    use_tracer,
)
from repro.store import Store
from repro.store.cache import DEFAULT_CACHE_BYTES, ChunkCache

#: Per-codec kwargs (mirrors tests/store/test_store.py).
CODEC_KWARGS = {
    "dpz": {"scheme": "s", "tve_nines": 6},
    "sz": {"eps": 1e-4},
    "zfp": {"rate": 12.0},
    "mgard": {"eps": 1e-4},
    "dctz": {"p": 1e-4, "index_bytes": 2},
    "tucker": {"target": 0.99999},
    "raw": {},
    "delta": {},
    "scale-offset": {"eps": 1e-4},
}


def _chunk(value: float, n: int = 128) -> np.ndarray:
    """An n-float64 array (n*8 bytes) filled with ``value``."""
    return np.full(n, value, dtype="<f8")


class TestChunkCacheUnit:
    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            ChunkCache(-1)

    def test_default_budget(self):
        assert ChunkCache().max_bytes == DEFAULT_CACHE_BYTES

    def test_put_get_roundtrip_readonly(self):
        cache = ChunkCache(1 << 20)
        stored = cache.put(("f", 0), _chunk(1.0))
        assert not stored.flags.writeable
        hit = cache.get(("f", 0))
        np.testing.assert_array_equal(hit, _chunk(1.0))
        assert not hit.flags.writeable

    def test_view_is_copied_before_caching(self):
        # Caching a view must not pin (or later mutate with) the base.
        cache = ChunkCache(1 << 20)
        base = np.zeros(256, dtype="<f8")
        cache.put(("f", 0), base[:128])
        base[:] = 7.0
        np.testing.assert_array_equal(cache.get(("f", 0)), _chunk(0.0))

    def test_lru_eviction_order(self):
        # Budget fits exactly three 1 KiB chunks; inserting a fourth
        # evicts the least recently *used*, not least recently added.
        cache = ChunkCache(3 * 1024)
        for i in range(3):
            cache.put(("f", i), _chunk(float(i)))
        assert cache.get(("f", 0)) is not None  # refresh 0
        cache.put(("f", 3), _chunk(3.0))        # evicts 1
        assert cache.get(("f", 1)) is None
        assert cache.get(("f", 0)) is not None
        assert cache.get(("f", 2)) is not None
        assert cache.get(("f", 3)) is not None

    def test_byte_budget_never_exceeded(self):
        cache = ChunkCache(2 * 1024 + 100)
        for i in range(10):
            cache.put(("f", i), _chunk(float(i)))
            assert cache.nbytes <= cache.max_bytes
        assert len(cache) == 2

    def test_oversize_chunk_not_cached_but_returned(self):
        cache = ChunkCache(100)
        out = cache.put(("f", 0), _chunk(1.0))
        assert not out.flags.writeable
        assert len(cache) == 0
        assert cache.nbytes == 0

    def test_zero_budget_disables(self):
        cache = ChunkCache(0)
        cache.put(("f", 0), _chunk(1.0))
        assert cache.get(("f", 0)) is None
        assert len(cache) == 0

    def test_replace_same_key_accounts_bytes_once(self):
        cache = ChunkCache(1 << 20)
        cache.put(("f", 0), _chunk(1.0))
        cache.put(("f", 0), _chunk(2.0))
        assert cache.nbytes == _chunk(0.0).nbytes
        np.testing.assert_array_equal(cache.get(("f", 0)), _chunk(2.0))

    def test_invalidate_field_is_per_field(self):
        cache = ChunkCache(1 << 20)
        cache.put(("a", 0), _chunk(1.0))
        cache.put(("a", 1), _chunk(2.0))
        cache.put(("b", 0), _chunk(3.0))
        assert cache.invalidate_field("a") == 2
        assert cache.get(("a", 0)) is None
        assert cache.get(("b", 0)) is not None
        assert cache.nbytes == _chunk(0.0).nbytes

    def test_clear(self):
        cache = ChunkCache(1 << 20)
        cache.put(("a", 0), _chunk(1.0))
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0

    def test_counters(self):
        with use_tracer(Tracer()):
            metrics_reset()
            cache = ChunkCache(1024)
            cache.get(("f", 0))
            cache.put(("f", 0), _chunk(1.0))
            cache.get(("f", 0))
            cache.put(("f", 1), _chunk(2.0))  # evicts 0
            c = counters_snapshot()
        assert c["store.cache.misses"] == 1
        assert c["store.cache.hits"] == 1
        assert c["store.cache.evictions"] == 1


@pytest.fixture
def field_3d(rng) -> np.ndarray:
    g = np.linspace(-1, 1, 24)
    zz, yy, xx = np.meshgrid(g, g, g, indexing="ij")
    base = np.sin(3 * xx) * np.cos(2 * yy) + zz
    return (base + 0.01 * rng.normal(size=base.shape)).astype(np.float32)


class TestStoreCache:
    def test_warm_region_bit_identical_every_codec(self, tmp_path,
                                                   field_3d):
        # Acceptance: a cached (warm) region read returns exactly the
        # bytes a cold read returns, for every registered codec.
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            for codec in CODECS:
                st.add(f"f_{codec}", field_3d, codec=codec,
                       chunk_shape=(8, 8, 8), **CODEC_KWARGS[codec])
        region = (slice(3, 19), slice(0, 8), slice(5, 21))
        for codec in CODECS:
            cold_store = Store.open(path)
            cold = cold_store.get_region(f"f_{codec}", region)
            warm = cold_store.get_region(f"f_{codec}", region)
            np.testing.assert_array_equal(warm, cold)
            fresh = Store.open(path).get_region(f"f_{codec}", region)
            np.testing.assert_array_equal(fresh, cold)

    def test_get_and_get_region_share_cache(self, tmp_path, field_3d):
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", field_3d, codec="raw", chunk_shape=(8, 8, 8))
        st = Store.open(path)
        with use_tracer(Tracer()):
            metrics_reset()
            st.get("f")  # decodes all 27 chunks, populates cache
            st.get_region("f", (slice(0, 8), slice(0, 8), slice(0, 8)))
            c = counters_snapshot()
        assert c["store.chunks.decoded"] == 27
        assert c["store.cache.hits"] == 1

    def test_append_invalidates_only_that_field(self, tmp_path,
                                                field_3d):
        path = tmp_path / "s.dpzs"
        st = Store.create(path)
        st.add("a", field_3d, codec="raw", chunk_shape=(8, 8, 8))
        st.get("a")  # warm the cache on this handle
        with use_tracer(Tracer()):
            metrics_reset()
            st.add("b", field_3d, codec="raw", chunk_shape=(8, 8, 8))
            c = counters_snapshot()
            # "a" entries survive: re-reading "a" hits, never decodes.
            st.get("a")
            c2 = counters_snapshot()
        assert "store.cache.invalidations" not in c
        assert c2["store.cache.hits"] == 27
        assert "store.chunks.decoded" not in c2

    def test_cache_bytes_zero_disables(self, tmp_path, field_3d):
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", field_3d, codec="raw", chunk_shape=(8, 8, 8))
        st = Store.open(path, cache_bytes=0)
        with use_tracer(Tracer()):
            metrics_reset()
            st.get("f")
            st.get("f")
            c = counters_snapshot()
        assert c["store.chunks.decoded"] == 54
        assert "store.cache.hits" not in c

    def test_warm_read_decodes_nothing(self, tmp_path, field_3d):
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", field_3d, codec="raw", chunk_shape=(8, 8, 8))
        st = Store.open(path)
        region = (slice(0, 24), slice(0, 24), slice(3, 4))
        st.get_region("f", region)
        with use_tracer(Tracer()):
            metrics_reset()
            st.get_region("f", region)
            c = counters_snapshot()
        assert "store.chunks.decoded" not in c
        assert "store.bytes.decoded" not in c
        assert c["store.cache.hits"] == 9

    def test_concurrent_readers_hammer(self, tmp_path, field_3d):
        # Many threads reading overlapping regions through one small
        # cache (forcing constant eviction) must all see exact data.
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", field_3d, codec="raw", chunk_shape=(8, 8, 8))
        st = Store.open(path, cache_bytes=8 * 8 * 8 * 4 * 3)
        regions = [
            (slice(0, 24), slice(0, 24), slice(z, z + 2))
            for z in range(0, 22)
        ]
        errors: list[Exception] = []

        def reader(offset: int) -> None:
            try:
                for i in range(len(regions)):
                    r = regions[(i + offset) % len(regions)]
                    out = st.get_region("f", r)
                    np.testing.assert_array_equal(out, field_3d[r])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i * 3,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
