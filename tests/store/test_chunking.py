"""Tests for the pure-integer chunk-grid geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError, DataShapeError
from repro.store.chunking import (
    chunk_index,
    chunk_slices,
    default_chunk_shape,
    grid_shape,
    iter_chunks,
    normalize_region,
    overlapping_chunks,
    validate_chunk_shape,
)


class TestGrid:
    def test_grid_shape_ceil_division(self):
        assert grid_shape((64, 64, 64), (16, 16, 16)) == (4, 4, 4)
        assert grid_shape((65, 64), (16, 16)) == (5, 4)
        assert grid_shape((5,), (16,)) == (1,)

    def test_iter_chunks_covers_exactly_once(self):
        shape, cshape = (10, 7), (4, 3)
        cover = np.zeros(shape, dtype=int)
        for coord, sl in iter_chunks(shape, cshape):
            cover[sl] += 1
        assert (cover == 1).all()

    def test_iter_chunks_c_order_matches_chunk_index(self):
        shape, cshape = (10, 7, 5), (4, 3, 2)
        grid = grid_shape(shape, cshape)
        for i, (coord, _) in enumerate(iter_chunks(shape, cshape)):
            assert chunk_index(grid, coord) == i

    def test_edge_chunks_are_smaller(self):
        slices = chunk_slices((10,), (4,), (2,))
        assert slices == (slice(8, 10),)

    def test_validate_clamps_oversize(self):
        assert validate_chunk_shape((8, 8), (16, 4)) == (8, 4)

    def test_validate_rejects_bad_shapes(self):
        with pytest.raises(DataShapeError):
            validate_chunk_shape((8, 8), (4,))
        with pytest.raises(ConfigError):
            validate_chunk_shape((8, 8), (4, 0))

    def test_default_chunk_shape_caps_by_ndim(self):
        assert default_chunk_shape((10,)) == (10,)
        assert default_chunk_shape((1000, 1000)) == (256, 256)
        assert default_chunk_shape((128, 128, 128)) == (32, 32, 32)


class TestNormalizeRegion:
    def test_slices_and_ints(self):
        bounds, collapse = normalize_region(
            (64, 64, 64), (slice(0, 16), slice(8, 24), 3))
        assert bounds == ((0, 16), (8, 24), (3, 4))
        assert collapse == (False, False, True)

    def test_trailing_dims_default_full(self):
        bounds, collapse = normalize_region((8, 9), (slice(1, 2),))
        assert bounds == ((1, 2), (0, 9))
        assert collapse == (False, False)

    def test_negative_int_wraps(self):
        bounds, collapse = normalize_region((8,), (-1,))
        assert bounds == ((7, 8),)
        assert collapse == (True,)

    def test_rejects_steps_and_bad_indices(self):
        with pytest.raises(ConfigError, match="unit-step"):
            normalize_region((8,), (slice(0, 8, 2),))
        with pytest.raises(ConfigError, match="out of range"):
            normalize_region((8,), (8,))
        with pytest.raises(ConfigError, match="selectors"):
            normalize_region((8,), (slice(None), slice(None)))


class TestOverlap:
    def test_single_aligned_chunk(self):
        coords = list(overlapping_chunks(
            (64, 64, 64), (16, 16, 16), ((16, 32), (16, 32), (16, 32))))
        assert coords == [(1, 1, 1)]

    def test_straddling_read_touches_eight(self):
        coords = list(overlapping_chunks(
            (64, 64, 64), (16, 16, 16), ((8, 24), (8, 24), (8, 24))))
        assert len(coords) == 8

    def test_empty_bounds_yield_nothing(self):
        assert list(overlapping_chunks((8,), (4,), ((3, 3),))) == []

    @given(st.data())
    def test_overlap_matches_brute_force(self, data):
        ndim = data.draw(st.integers(1, 3))
        shape = tuple(data.draw(st.integers(1, 20)) for _ in range(ndim))
        cshape = tuple(data.draw(st.integers(1, 8)) for _ in range(ndim))
        cshape = validate_chunk_shape(shape, cshape)
        bounds = []
        for n in shape:
            lo = data.draw(st.integers(0, n - 1))
            hi = data.draw(st.integers(lo, n))
            bounds.append((lo, hi))
        bounds = tuple(bounds)
        expected = []
        for coord, sl in iter_chunks(shape, cshape):
            if all(max(lo, s.start) < min(hi, s.stop)
                   for s, (lo, hi) in zip(sl, bounds)):
                expected.append(coord)
        got = list(overlapping_chunks(shape, cshape, bounds))
        assert got == expected
