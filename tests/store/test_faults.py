"""Fault-injection matrix for the byte-store backends.

The acceptance matrix: every backend (memory, directory, single-file)
crossed with every fault kind (io-error, torn-write, bit-flip,
stale-read) crossed with the store operations (pack, region read,
append).  The invariants asserted in every cell:

* a faulted operation either raises a :class:`~repro.errors.ReproError`
  subclass or returns verified-correct data -- never a bare OSError /
  KeyError / garbage array;
* after any failed or corrupted *write*, reopening the underlying
  backend yields either the previous consistent state (the last durable
  manifest, fields bit-identical) or a clean FormatError -- readers
  never observe a half-written manifest or a silently truncated field;
* framed (key/value) backends *detect* value corruption via the CRC32
  integrity frame; the v1 single-file backend is only promised the
  manifest-last durability protocol (its layout predates the frame).

Seeds are fixed but overridable: ``DPZ_FAULT_SEED`` (comma-separated
ints) selects the seeds, and when ``DPZ_FAULT_LOG`` names a file every
injected fault is appended there as NDJSON -- the CI fault-injection
job runs three seeds and uploads that log as an artifact, so a failure
is replayable from the exact fault sequence.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    FormatError,
    ReproError,
    StoreError,
)
from repro.store import (
    DirectoryStore,
    DpzsFileBackend,
    FaultInjectingStore,
    FaultRule,
    MemoryStore,
    Store,
)
from repro.store.backends import FAULT_KINDS

#: Seeds for the matrix; CI overrides via DPZ_FAULT_SEED.
FAULT_SEEDS = tuple(
    int(s) for s in os.environ.get("DPZ_FAULT_SEED",
                                   "20260808").split(","))

BACKENDS = ("memory", "dir", "file")
OPS = ("pack", "region", "append")


def make_inner(kind, tmp_path):
    if kind == "memory":
        return MemoryStore()
    if kind == "dir":
        return DirectoryStore(tmp_path / "s.d", create=True)
    return DpzsFileBackend(tmp_path / "s.dpzs", create=True)


def baseline(rng):
    return rng.normal(size=(8, 8)).astype("<f4")


def pack_base(inner, data):
    with Store.create(inner) as st:
        st.add("base", data, codec="raw", chunk_shape=(4, 4))


def dump_log(wrapper):
    """Append this wrapper's fault records to the CI NDJSON log."""
    path = os.environ.get("DPZ_FAULT_LOG")
    if path:
        wrapper.write_log(path)


@pytest.mark.parametrize("seed", FAULT_SEEDS)
@pytest.mark.parametrize("op", OPS)
@pytest.mark.parametrize("fault", FAULT_KINDS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestFaultMatrix:
    """One test per (backend x fault kind x store operation) cell.

    ``pack`` runs the faulted op against a fresh store, ``append``
    against a store already holding a committed ``base`` field, and
    ``region`` reads an intact ``base`` field under the fault.  Each
    scenario returns the wrapper plus the set of consistent field
    listings a post-crash reopen may legitimately observe; the cell
    then asserts the reopen lands on one of them (or raises a clean
    FormatError) with committed data bit-identical.
    """

    def test_cell(self, backend, fault, op, seed, tmp_path, rng):
        inner = make_inner(backend, tmp_path)
        base = None
        if op != "pack":
            base = baseline(rng)
            pack_base(inner, base)
        new = (baseline(rng) * 2.0 + 1.0).astype("<f4")
        run = getattr(self, f"_run_{fault.replace('-', '_')}")
        wrapper, allowed = run(inner, base, new, op, seed)
        assert wrapper.records, (
            f"cell ({backend}, {fault}, {op}) injected no fault -- "
            f"the matrix entry is vacuous")
        dump_log(wrapper)
        # Crash-then-reopen on the raw backend: either the corruption
        # is *detected* (clean FormatError) or the manifest resolves
        # to one of the consistent states, data bit-identical.
        try:
            reopened = Store.open(inner)
        except FormatError:
            return
        assert reopened.names() in allowed
        if base is not None and "base" in reopened.names():
            np.testing.assert_array_equal(reopened.get("base"), base)

    # -- per-kind scenarios: (wrapper, allowed reopen states) -----------

    def _run_io_error(self, inner, base, new, op, seed):
        if op == "region":
            wrapper = FaultInjectingStore(
                inner, FaultRule("io-error", op="get",
                                 key_glob="chunks/*"), seed=seed)
            st = Store.open(wrapper)
            with pytest.raises(ReproError):
                st.get_region("base", (slice(0, 4), slice(0, 4)))
            return wrapper, [["base"]]
        # pack (first field) / append (second field): the write path
        # raises, the field must not be committed.
        wrapper = FaultInjectingStore(
            inner, FaultRule("io-error", op="set",
                             key_glob="chunks/extra/*"), seed=seed)
        st = (Store.open(wrapper) if op == "append"
              else Store.create(wrapper))
        with pytest.raises(StoreError):
            st.add("extra", new, codec="raw", chunk_shape=(4, 4))
        assert "extra" not in st.names()
        return wrapper, [[], ["base"]]

    def _run_torn_write(self, inner, base, new, op, seed):
        if op == "region":
            # Region reads must be unaffected by a torn write landing
            # elsewhere in the keyspace.
            wrapper = FaultInjectingStore(
                inner, FaultRule("torn-write", op="set",
                                 key_glob="chunks/extra/*",
                                 max_faults=1), seed=seed)
            st = Store.open(wrapper)
            with pytest.raises(StoreError):
                st.add("extra", new, codec="raw", chunk_shape=(4, 4))
            region = (slice(1, 7), slice(2, 8))
            np.testing.assert_array_equal(
                st.get_region("base", region), base[region])
            return wrapper, [["base"]]
        # pack/append: tear the manifest write itself -- the commit
        # point.  The operation must raise, and the torn manifest must
        # never be served as data (FormatError or the previous state).
        wrapper = FaultInjectingStore(
            inner, FaultRule("torn-write", op="set",
                             key_glob="manifest", max_faults=1),
            seed=seed)
        with pytest.raises(StoreError):
            if op == "pack":
                st = Store.create(wrapper)  # create IS a manifest write
                st.add("extra", new, codec="raw", chunk_shape=(4, 4))
            else:
                Store.open(wrapper).add("extra", new, codec="raw",
                                        chunk_shape=(4, 4))
        return wrapper, [[], ["base"], ["extra"]]

    def _run_bit_flip(self, inner, base, new, op, seed):
        if op == "region":
            wrapper = FaultInjectingStore(
                inner, FaultRule("bit-flip", op="get",
                                 key_glob="chunks/*"), seed=seed)
            st = Store.open(wrapper)
            try:
                out = st.get_region("base", (slice(0, 8), slice(0, 8)))
            except ReproError:
                return wrapper, [["base"]]
            if wrapper.framed:
                pytest.fail(
                    "framed backend served a bit-flipped chunk without "
                    "tripping the CRC32 integrity frame")
            # v1 file layout has no per-chunk checksum: a flip may
            # decode; geometry must still hold.
            assert out.shape == base.shape
            return wrapper, [["base"]]
        # pack/append: corruption at rest.  The write itself succeeds
        # silently; the *read back* must detect it on framed backends.
        wrapper = FaultInjectingStore(
            inner, FaultRule("bit-flip", op="set",
                             key_glob="chunks/extra/*", max_faults=1),
            seed=seed)
        st = (Store.open(wrapper) if op == "append"
              else Store.create(wrapper))
        st.add("extra", new, codec="raw", chunk_shape=(4, 4))
        reader = Store.open(inner)
        if wrapper.framed:
            with pytest.raises(FormatError):
                reader.get("extra")
        else:
            try:
                out = reader.get("extra")
                assert out.shape == new.shape
            except ReproError:
                pass
        return wrapper, [["extra"], ["base", "extra"]]

    def _run_stale_read(self, inner, base, new, op, seed):
        # Stale reads model an eventually-consistent keyspace: the
        # manifest read returns its previous value.  A stale reader
        # lands on the *previous consistent state* -- fields it sees
        # decode exactly, and the new field is simply not visible yet.
        wrapper = FaultInjectingStore(
            inner, FaultRule("stale-read", op="get",
                             key_glob="manifest"), seed=seed)
        st = (Store.open(wrapper) if op != "pack"
              else Store.create(wrapper))
        st.add("extra", new, codec="raw", chunk_shape=(4, 4))
        stale = Store.open(wrapper)
        previous = [] if op == "pack" else ["base"]
        assert stale.names() == previous
        if base is not None:
            np.testing.assert_array_equal(stale.get("base"), base)
            if op == "region":
                region = (slice(2, 6), slice(0, 5))
                np.testing.assert_array_equal(
                    stale.get_region("base", region), base[region])
        # A non-stale reader sees the committed append.
        fresh = Store.open(inner)
        assert fresh.names() == previous + ["extra"]
        np.testing.assert_array_equal(fresh.get("extra"), new)
        return wrapper, [previous + ["extra"]]


class TestCrashThenReopen:
    """Durability: the last durable manifest survives any failed append."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("glob", ["manifest", "chunks/extra/*"])
    def test_failed_append_keeps_previous_manifest(self, backend, glob,
                                                   tmp_path, rng):
        inner = make_inner(backend, tmp_path)
        base = baseline(rng)
        pack_base(inner, base)
        wrapper = FaultInjectingStore(
            inner, FaultRule("io-error", op="set", key_glob=glob),
            seed=FAULT_SEEDS[0])
        st = Store.open(wrapper)
        with pytest.raises(StoreError):
            st.add("extra", base * 3, codec="raw", chunk_shape=(4, 4))
        dump_log(wrapper)
        # Crash-then-reopen: a brand-new handle on the raw backend.
        reopened = Store.open(inner)
        assert reopened.names() == ["base"]
        np.testing.assert_array_equal(reopened.get("base"), base)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_torn_manifest_never_reads_as_garbage(self, backend,
                                                  tmp_path, rng):
        inner = make_inner(backend, tmp_path)
        base = baseline(rng)
        pack_base(inner, base)
        wrapper = FaultInjectingStore(
            inner, FaultRule("torn-write", op="set",
                             key_glob="manifest", max_faults=1),
            seed=FAULT_SEEDS[0])
        st = Store.open(wrapper)
        with pytest.raises(StoreError):
            st.add("extra", base * 3, codec="raw", chunk_shape=(4, 4))
        dump_log(wrapper)
        try:
            reopened = Store.open(inner)
        except FormatError:
            return  # detected, not served -- acceptable
        assert reopened.names() in ([], ["base"])
        if reopened.names() == ["base"]:
            np.testing.assert_array_equal(reopened.get("base"), base)


class TestFaultMachinery:
    """The injector itself: rules, seeding, budgets, and the log."""

    def test_rule_validation(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultRule("gamma-ray")
        with pytest.raises(ConfigError, match="unknown fault op"):
            FaultRule("io-error", op="fsync")
        with pytest.raises(ConfigError, match="cannot target op"):
            FaultRule("torn-write", op="get")
        with pytest.raises(ConfigError, match="cannot target op"):
            FaultRule("stale-read", op="set")
        with pytest.raises(ConfigError, match="probability"):
            FaultRule("io-error", probability=0.0)
        with pytest.raises(ConfigError, match="probability"):
            FaultRule("io-error", probability=1.5)

    def test_same_seed_same_fault_sequence(self):
        def run(seed):
            inner = MemoryStore()
            wrapper = FaultInjectingStore(
                inner,
                FaultRule("bit-flip", op="get", probability=0.3),
                seed=seed)
            for i in range(30):
                inner[f"k/{i}"] = bytes(range(32))
            for i in range(30):
                wrapper[f"k/{i}"]
            return wrapper.records

        a, b = run(1234), run(1234)
        assert a == b
        assert a != run(4321)

    def test_max_faults_budget_holds(self):
        inner = MemoryStore()
        wrapper = FaultInjectingStore(
            inner, FaultRule("io-error", op="set", max_faults=2),
            seed=7)
        failures = 0
        for i in range(10):
            try:
                wrapper[f"k/{i}"] = b"v"
            except StoreError:
                failures += 1
        assert failures == 2
        assert len(wrapper.records) == 2
        assert len(inner) == 8

    def test_first_matching_rule_wins(self):
        inner = MemoryStore()
        inner["k/0"] = b"value"
        wrapper = FaultInjectingStore(
            inner,
            [FaultRule("io-error", op="get", key_glob="k/*"),
             FaultRule("bit-flip", op="get", key_glob="*")],
            seed=0)
        with pytest.raises(StoreError):
            wrapper["k/0"]
        assert [r["kind"] for r in wrapper.records] == ["io-error"]

    def test_ndjson_log_replayable(self, tmp_path):
        inner = MemoryStore()
        wrapper = FaultInjectingStore(
            inner, FaultRule("io-error", op="set", max_faults=3),
            seed=42)
        for i in range(3):
            with pytest.raises(StoreError):
                wrapper[f"k/{i}"] = b"v"
        log = tmp_path / "faults.ndjson"
        wrapper.write_log(log)
        lines = log.read_text().splitlines()
        assert len(lines) == 3
        for seq, line in enumerate(lines):
            rec = json.loads(line)
            assert rec["event"] == "fault"
            assert rec["seq"] == seq
            assert rec["kind"] == "io-error"
            assert rec["seed"] == 42
            assert rec["backend"] == "memory"

    def test_faults_counter_increments(self):
        from repro.observability import (
            Tracer,
            counters_snapshot,
            metrics_reset,
            use_tracer,
        )

        metrics_reset()
        with use_tracer(Tracer()):
            inner = MemoryStore()
            wrapper = FaultInjectingStore(
                inner, FaultRule("io-error", op="set", max_faults=1),
                seed=0)
            with pytest.raises(StoreError):
                wrapper["k/0"] = b"v"
            assert (counters_snapshot().get("store.faults.injected")
                    == 1)
