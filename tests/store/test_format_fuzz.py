"""Failure-injection tests for the ``dpzs`` on-disk format.

Truncate and mangle real store files at every layer -- header,
manifest, chunk payloads -- and require each read path to raise a
:class:`~repro.errors.ReproError` subclass (almost always
:class:`~repro.errors.FormatError`), never an ``IndexError`` /
``struct.error`` / silent garbage.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError, ReproError
from repro.store import Store
from repro.store.format import (
    HEADER_SIZE,
    ChunkRef,
    FieldMeta,
    decode_manifest,
    encode_manifest,
    pack_header,
    unpack_header,
)


def _make_store(tmp_path, rng) -> str:
    path = tmp_path / "fuzz.dpzs"
    data = rng.normal(size=(12, 10)).astype(np.float32)
    with Store.create(path) as st:
        st.add("a", data, codec="raw", chunk_shape=(4, 4))
        st.add("b", (data * 2).astype(np.float32)[:6],
               codec="sz", chunk_shape=(4, 4), eps=1e-3)
    return str(path)


class TestHeader:
    def test_truncated_header(self):
        blob = pack_header(HEADER_SIZE, 10)
        for cut in range(HEADER_SIZE):
            with pytest.raises(FormatError, match="truncated"):
                unpack_header(blob[:cut])

    def test_bad_magic_and_version(self):
        blob = pack_header(HEADER_SIZE, 10)
        with pytest.raises(FormatError, match="magic"):
            unpack_header(b"NOPE" + blob[4:])
        with pytest.raises(FormatError, match="version"):
            unpack_header(blob[:4] + b"\x09" + blob[5:])

    def test_offset_inside_header_rejected(self):
        with pytest.raises(FormatError, match="inside the header"):
            unpack_header(pack_header(3, 10))


class TestManifest:
    def _meta(self) -> FieldMeta:
        return FieldMeta(
            name="f", codec_label="raw", dtype_tag="f4",
            shape=(8, 8), chunk_shape=(4, 4), original_nbytes=256,
            error_budget=None,
            chunks=[ChunkRef(offset=HEADER_SIZE + 9 * i, length=9,
                             codec="raw") for i in range(4)])

    def test_roundtrip(self):
        fields = decode_manifest(encode_manifest([self._meta()]))
        assert len(fields) == 1
        m = fields[0]
        assert (m.name, m.shape, m.chunk_shape) == ("f", (8, 8), (4, 4))
        assert len(m.chunks) == 4

    def test_chunk_count_grid_mismatch_rejected(self):
        meta = self._meta()
        meta.chunks.pop()
        with pytest.raises(FormatError, match="chunks"):
            decode_manifest(encode_manifest([meta]))

    def test_duplicate_field_names_rejected(self):
        blob = encode_manifest([self._meta(), self._meta()])
        with pytest.raises(FormatError, match="repeats"):
            decode_manifest(blob)

    @given(st.data())
    @settings(max_examples=100)
    def test_truncation_fuzz(self, data):
        blob = encode_manifest([self._meta()])
        cut = data.draw(st.integers(0, len(blob) - 1))
        with pytest.raises(ReproError):
            decode_manifest(blob[:cut])

    @given(st.data())
    @settings(max_examples=100)
    def test_byte_flip_fuzz(self, data):
        blob = bytearray(encode_manifest([self._meta()]))
        pos = data.draw(st.integers(0, len(blob) - 1))
        flip = data.draw(st.integers(1, 255))
        blob[pos] ^= flip
        try:
            fields = decode_manifest(bytes(blob))
        except ReproError:
            return
        # A surviving flip must still yield structurally sane metadata
        # (it may have changed offsets/sizes -- those fail at read).
        for m in fields:
            assert len(m.shape) == len(m.chunk_shape)


@pytest.fixture(scope="module")
def store_blob(tmp_path_factory) -> bytes:
    rng = np.random.default_rng(99)
    path = _make_store(tmp_path_factory.mktemp("fz"), rng)
    with open(path, "rb") as fh:
        return fh.read()


class TestWholeFileFuzz:
    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_truncated_file_never_leaks(self, store_blob,
                                        tmp_path_factory, data):
        cut = data.draw(st.integers(0, len(store_blob) - 1))
        trunc = tmp_path_factory.mktemp("fz") / "t.dpzs"
        trunc.write_bytes(store_blob[:cut])
        with pytest.raises(ReproError):
            store = Store.open(trunc)
            for name in store.names():
                store.get(name)

    def test_payload_corruption_caught_at_read(self, tmp_path, rng):
        path = _make_store(tmp_path, rng)
        st = Store.open(path)
        ref = st._fields["b"].chunks[0]
        blob = bytearray(open(path, "rb").read())
        for i in range(ref.offset, ref.offset + ref.length):
            blob[i] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        reopened = Store.open(path)  # manifest is intact
        with pytest.raises(FormatError):
            reopened.get("b")
        # The undamaged field still reads fine.
        assert reopened.get("a").shape == (12, 10)

    def test_chunk_decoding_to_wrong_shape_rejected(self, tmp_path, rng):
        # Swap two payloads of *different* chunk geometry: the decoded
        # shape check must catch the mismatch even though each payload
        # is itself a valid container.
        data = rng.normal(size=(10, 4)).astype(np.float32)
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", data, codec="raw", chunk_shape=(4, 4))
        st = Store.open(path)
        refs = st._fields["f"].chunks
        full, edge = refs[0], refs[2]  # 4x4 vs 2x4 edge chunk
        blob = bytearray(open(path, "rb").read())
        payload_edge = bytes(blob[edge.offset:edge.offset + edge.length])
        blob[full.offset:full.offset + len(payload_edge)] = payload_edge
        open(path, "wb").write(bytes(blob))
        with pytest.raises(ReproError):
            Store.open(path).get("f")
