"""Golden-file backward compatibility for the backend refactor.

``tests/store/golden/pre_backend_refactor.dpzs`` was written by the
store *before* the byte-store backend split (PR 5 code), together
with ``.npy`` snapshots of what that code decoded from it.  The
acceptance bar for the refactor: the new default backend opens that
exact file and reproduces every field bit-identically -- v1 files are
not migrated, they just keep working.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.store import DpzsFileBackend, Store

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN = os.path.join(GOLDEN_DIR, "pre_backend_refactor.dpzs")

#: (field, codec label recorded at write time) in the golden file.
GOLDEN_FIELDS = (("smooth", "sz"), ("noisy", "raw"), ("auto_f", "auto"))


@pytest.fixture(scope="module")
def golden_store():
    return Store.open(GOLDEN)


def _snapshot(name: str) -> np.ndarray:
    return np.load(os.path.join(
        GOLDEN_DIR, f"pre_backend_refactor.{name}.npy"))


class TestGoldenFile:
    def test_opens_via_default_backend(self, golden_store):
        assert isinstance(golden_store.backend, DpzsFileBackend)
        assert golden_store.names() == [n for n, _ in GOLDEN_FIELDS]

    def test_codec_labels_preserved(self, golden_store):
        for name, codec in GOLDEN_FIELDS:
            assert golden_store.info(name)["codec"] == codec

    @pytest.mark.parametrize("name", [n for n, _ in GOLDEN_FIELDS])
    def test_fields_decode_bit_identically(self, golden_store, name):
        out = golden_store.get(name)
        snap = _snapshot(name)
        assert out.dtype == snap.dtype
        np.testing.assert_array_equal(out, snap)

    def test_region_reads_match_snapshot_slices(self, golden_store):
        snap = _snapshot("smooth")
        region = (slice(3, 17), slice(5, 19))
        np.testing.assert_array_equal(
            golden_store.get_region("smooth", region), snap[region])

    def test_file_bytes_untouched_by_reads(self, golden_store):
        before = open(GOLDEN, "rb").read()
        golden_store.get("noisy")
        golden_store.get_region("auto_f", (slice(0, 4), slice(0, 4)))
        assert open(GOLDEN, "rb").read() == before
