"""Property-based round-trip tests for the chunked store.

Hypothesis drives arbitrary array shapes, dtypes, chunk grids and
regions through the store and asserts the acceptance property from
the backend refactor: ``get_region(name, region)`` is bit-identical
to slicing the whole-array decode, for every registered codec --
whatever a lossy codec did to the values, region reads and whole
reads must do it *identically*.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.codecs.registry import codec_ids
from repro.store import MemoryStore, Store

#: Per-codec kwargs (mirrors tests/store/test_store.py).
CODEC_KWARGS = {
    "dpz": {"scheme": "s", "tve_nines": 6},
    "sz": {"eps": 1e-4},
    "zfp": {"rate": 12.0},
    "mgard": {"eps": 1e-4},
    "dctz": {"p": 1e-4, "index_bytes": 2},
    "tucker": {"target": 0.99999},
    "raw": {},
    "delta": {},
    "scale-offset": {"eps": 1e-4},
}


@hst.composite
def array_and_chunks(draw):
    """(array, chunk_shape): 1-3D, f4/f8, arbitrary chunk grid."""
    ndim = draw(hst.integers(1, 3))
    shape = tuple(draw(hst.integers(1, 10)) for _ in range(ndim))
    chunk = tuple(draw(hst.integers(1, n)) for n in shape)
    dtype = draw(hst.sampled_from(["<f4", "<f8"]))
    seed = draw(hst.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    arr = rng.normal(size=shape).astype(dtype)
    return arr, chunk


@hst.composite
def region_for(draw, shape):
    """A mixed slice/integer region inside ``shape``."""
    region = []
    for n in shape:
        if draw(hst.booleans()):
            lo = draw(hst.integers(0, n - 1))
            hi = draw(hst.integers(lo + 1, n))
            region.append(slice(lo, hi))
        else:
            region.append(draw(hst.integers(0, n - 1)))
    return tuple(region)


class TestLosslessRoundtrip:
    @pytest.mark.parametrize("codec", ["raw", "delta"])
    @given(data=hst.data(), payload=array_and_chunks())
    def test_bit_identical_any_shape_and_grid(self, codec, data,
                                              payload):
        arr, chunk = payload
        with Store.create(MemoryStore()) as st:
            st.add("f", arr, codec=codec, chunk_shape=chunk,
                   **CODEC_KWARGS[codec])
            whole = st.get("f")
            np.testing.assert_array_equal(whole, arr)
            assert whole.dtype == arr.dtype
            region = data.draw(region_for(arr.shape))
            np.testing.assert_array_equal(st.get_region("f", region),
                                          arr[region])


class TestEveryCodecRegionConsistency:
    @pytest.mark.parametrize(
        "codec", sorted(set(codec_ids()) & set(CODEC_KWARGS)))
    # Chunk extents stay in {4, 8}: the baselines put floors on chunk
    # geometry (MGARD needs every axis >= 4, DPZ >= 8 values) and this
    # test is about region consistency, not geometry validation -- the
    # lossless property above already covers arbitrary grids.
    @settings(max_examples=8)
    @given(data=hst.data(),
           chunk=hst.tuples(hst.sampled_from([4, 8]),
                            hst.sampled_from([4, 8])),
           seed=hst.integers(0, 2**16))
    def test_region_equals_whole_slice(self, codec, data, chunk, seed):
        rng = np.random.default_rng(seed)
        x = np.linspace(0.0, 4.0, 8, dtype="<f4")
        arr = (np.outer(np.sin(x), np.cos(x))
               + 0.01 * rng.normal(size=(8, 8))).astype("<f4")
        with Store.create(MemoryStore()) as st:
            st.add("f", arr, codec=codec, chunk_shape=chunk,
                   **CODEC_KWARGS[codec])
            whole = st.get("f")
            assert whole.shape == arr.shape
            region = data.draw(region_for(arr.shape))
            np.testing.assert_array_equal(st.get_region("f", region),
                                          whole[region])


class TestAutoCodecProperty:
    @settings(max_examples=10)
    @given(seed=hst.integers(0, 2**16),
           budget=hst.sampled_from([1e-2, 1e-3, 1e-4]))
    def test_auto_holds_budget_everywhere(self, seed, budget):
        rng = np.random.default_rng(seed)
        arr = rng.normal(size=(12, 12)).astype("<f4")
        with Store.create(MemoryStore()) as st:
            st.add("f", arr, codec="auto", error_budget=budget,
                   chunk_shape=(6, 6))
            out = st.get("f")
        assert float(np.max(np.abs(out.astype("<f8")
                                   - arr.astype("<f8")))) <= budget


class TestScaleOffsetBound:
    @settings(max_examples=25)
    @given(seed=hst.integers(0, 2**32 - 1),
           scale=hst.sampled_from([1e-3, 1.0, 1e3]),
           eps=hst.sampled_from([1e-5, 1e-3, 1e-1]),
           dtype=hst.sampled_from(["<f4", "<f8"]))
    def test_quantization_error_within_eps(self, seed, scale, eps,
                                           dtype):
        from repro.codecs.filters import (
            scale_offset_compress,
            scale_offset_decompress,
        )

        rng = np.random.default_rng(seed)
        arr = (scale * rng.normal(size=(37,))).astype(dtype)
        out = scale_offset_decompress(scale_offset_compress(arr,
                                                            eps=eps))
        assert out.dtype == np.dtype(dtype)
        err = float(np.max(np.abs(out.astype("<f8")
                                  - arr.astype("<f8"))))
        # f4 reconstruction adds at most one half-ulp on top of the
        # quantizer's analytic eps bound.
        tol = eps * (1 + 1e-6) + (np.abs(arr).max() * 1e-6
                                  if dtype == "<f4" else 0.0)
        assert err <= tol
