"""Dynamic codec registry: registration, lookup, and integration.

The registry is the single resolution point for every codec id the
archive, the store, and the CLI accept, so these tests pin both the
registry's own contract (duplicate / unknown ids raise ConfigError
naming the known ids) and the end-to-end promise: a codec registered
at runtime is immediately usable as a per-chunk store codec and as an
archive codec with zero changes elsewhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.archive import CODECS, FieldArchive
from repro.codecs.registry import (
    CodecSpec,
    CodecTable,
    codec_functions,
    codec_ids,
    get_codec,
    have_codec,
    register_codec,
    unregister_codec,
)
from repro.errors import ConfigError
from repro.store import MemoryStore, Store


def _xor_compress(data, **_kw):
    arr = np.ascontiguousarray(np.asarray(data), dtype="<f4")
    head = np.array([arr.ndim, *arr.shape], dtype="<u4").tobytes()
    body = bytes(b ^ 0x5A for b in arr.tobytes())
    return head + body


def _xor_decompress(blob):
    ndim = int(np.frombuffer(blob[:4], dtype="<u4")[0])
    shape = tuple(np.frombuffer(blob[4:4 + 4 * ndim], dtype="<u4"))
    body = bytes(b ^ 0x5A for b in blob[4 + 4 * ndim:])
    return np.frombuffer(body, dtype="<f4").reshape(shape).copy()


@pytest.fixture
def xor_codec():
    """Register a throwaway lossless codec, unregister on teardown."""
    register_codec("xor-test", _xor_compress, _xor_decompress,
                   kind="lossless")
    try:
        yield "xor-test"
    finally:
        unregister_codec("xor-test")


class TestRegistration:
    def test_duplicate_id_raises_with_known_ids(self, xor_codec):
        with pytest.raises(ConfigError) as exc_info:
            register_codec(xor_codec, _xor_compress, _xor_decompress)
        message = str(exc_info.value)
        assert "already registered" in message
        assert "known ids" in message
        assert "'sz'" in message and "'xor-test'" in message

    def test_overwrite_replaces(self, xor_codec):
        spec = register_codec(xor_codec, _xor_compress,
                              _xor_decompress, kind="lossless",
                              source="elsewhere", overwrite=True)
        assert get_codec(xor_codec) is spec
        assert spec.source == "elsewhere"

    @pytest.mark.parametrize("bad_id", ["", "a:b", "a/b", "a\x00b"])
    def test_invalid_ids_rejected(self, bad_id):
        with pytest.raises(ConfigError, match="invalid codec id"):
            register_codec(bad_id, _xor_compress, _xor_decompress)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigError, match="invalid codec kind"):
            register_codec("k-test", _xor_compress, _xor_decompress,
                           kind="quantum")

    def test_unregister_unknown_raises_with_known_ids(self):
        with pytest.raises(ConfigError, match="known ids"):
            unregister_codec("never-registered")

    def test_spec_shape(self, xor_codec):
        spec = get_codec(xor_codec)
        assert isinstance(spec, CodecSpec)
        assert spec.pair == (spec.compress, spec.decompress)
        assert spec.kind == "lossless"


class TestLookup:
    def test_unknown_id_raises_with_known_ids(self):
        with pytest.raises(ConfigError) as exc_info:
            get_codec("no-such-codec")
        message = str(exc_info.value)
        assert "unknown codec 'no-such-codec'" in message
        assert "'dpz'" in message and "'raw'" in message

    def test_builtins_present(self):
        for name in ("dpz", "sz", "zfp", "mgard", "dctz", "tucker",
                     "raw", "delta", "scale-offset"):
            assert have_codec(name)

    def test_kind_filter(self):
        lossless = codec_ids(kind="lossless")
        assert "raw" in lossless and "delta" in lossless
        assert "sz" not in lossless
        assert "scale-offset" in codec_ids(kind="filter")

    def test_module_qualified_lookup(self):
        spec = get_codec("repro.codecs.filters:delta")
        assert spec.name == "delta"
        assert spec is get_codec("delta")

    def test_module_qualified_bad_module(self):
        with pytest.raises(ConfigError, match="cannot import"):
            get_codec("repro.codecs.does_not_exist:delta")

    def test_codec_functions_shorthand(self):
        compress, decompress = codec_functions("raw")
        data = np.arange(6, dtype="<f4")
        np.testing.assert_array_equal(decompress(compress(data)), data)


class TestCodecTableView:
    def test_archive_codecs_is_live_view(self, xor_codec):
        assert isinstance(CODECS, CodecTable)
        assert xor_codec in CODECS
        assert set(codec_ids()) == set(CODECS)
        unregister_codec(xor_codec)
        try:
            assert xor_codec not in CODECS
        finally:
            register_codec(xor_codec, _xor_compress, _xor_decompress,
                           kind="lossless")

    def test_unknown_index_raises_config_error(self):
        with pytest.raises(ConfigError, match="known ids"):
            CODECS["no-such-codec"]

    def test_len_and_contains(self):
        assert len(CODECS) == len(codec_ids())
        assert "sz" in CODECS
        assert 42 not in CODECS


class TestEndToEnd:
    def test_runtime_codec_in_store(self, xor_codec, rng):
        data = rng.normal(size=(10, 8)).astype("<f4")
        with Store.create(MemoryStore()) as st:
            st.add("f", data, codec=xor_codec, chunk_shape=(4, 4))
            np.testing.assert_array_equal(st.get("f"), data)
            region = (slice(1, 7), slice(2, 8))
            np.testing.assert_array_equal(st.get_region("f", region),
                                          data[region])
        assert st.info("f")["codec"] == xor_codec

    def test_runtime_codec_in_archive(self, xor_codec, rng):
        data = rng.normal(size=(16,)).astype("<f4")
        ar = FieldArchive()
        ar.add("f", data, codec=xor_codec)
        restored = FieldArchive.from_bytes(ar.to_bytes())
        np.testing.assert_array_equal(restored.get("f"), data)

    def test_store_rejects_unknown_codec_listing_ids(self, rng):
        st = Store.create(MemoryStore())
        with pytest.raises(ConfigError, match="unknown codec"):
            st.add("f", rng.normal(size=(4,)), codec="no-such")

    def test_reading_store_with_unregistered_codec_fails_cleanly(
            self, rng):
        # A store written with a runtime codec, read in a process
        # where it is absent: clean FormatError naming the codec.
        from repro.errors import FormatError

        register_codec("ephemeral-test", _xor_compress,
                       _xor_decompress, kind="lossless")
        bk = MemoryStore()
        try:
            with Store.create(bk) as st:
                st.add("f", rng.normal(size=(4,)).astype("<f4"),
                       codec="ephemeral-test", chunk_shape=(4,))
        finally:
            unregister_codec("ephemeral-test")
        st = Store.open(bk)
        with pytest.raises(FormatError, match="ephemeral-test"):
            st.get("f")
