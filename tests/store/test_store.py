"""Tests for the chunked store: round-trips, region reads, append, auto.

The acceptance bar for the subsystem (mirrored from the issue):

* ``get_region`` on a 64^3 field with 16^3 chunks decodes *only* the
  overlapping chunks (asserted via the bytes-decoded metric),
* region reads are bit-identical with a whole-field decode for every
  codec, and
* ``codec="auto"`` never violates its error budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.archive import CODECS, FieldArchive
from repro.errors import ConfigError, FormatError
from repro.observability import (
    Tracer,
    counters_snapshot,
    metrics_reset,
    use_tracer,
)
from repro.store import AUTO_CANDIDATES, Store, compress_chunk_auto

#: Per-codec kwargs for the all-codecs round-trip (archive test mirror).
CODEC_KWARGS = {
    "dpz": {"scheme": "s", "tve_nines": 6},
    "sz": {"eps": 1e-4},
    "zfp": {"rate": 12.0},
    "mgard": {"eps": 1e-4},
    "dctz": {"p": 1e-4, "index_bytes": 2},
    "tucker": {"target": 0.99999},
    "raw": {},
    "delta": {},
    "scale-offset": {"eps": 1e-4},
}


@pytest.fixture
def field_3d(rng) -> np.ndarray:
    """A 24^3 field with smooth structure plus mild noise (float32)."""
    g = np.linspace(-1, 1, 24)
    zz, yy, xx = np.meshgrid(g, g, g, indexing="ij")
    base = np.sin(3 * xx) * np.cos(2 * yy) + zz
    return (base + 0.01 * rng.normal(size=base.shape)).astype(np.float32)


class TestRoundTrip:
    def test_raw_lossless_roundtrip(self, tmp_path, field_3d):
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", field_3d, codec="raw", chunk_shape=(8, 8, 8))
        out = Store.open(path).get("f")
        np.testing.assert_array_equal(out, field_3d)
        assert out.dtype == field_3d.dtype

    def test_region_matches_whole_decode_every_codec(self, tmp_path,
                                                     field_3d):
        # Acceptance: region reads stitch to *bit-identical* values vs
        # the whole-field decode, for every codec in the registry.
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            for codec in CODECS:
                st.add(f"f_{codec}", field_3d, codec=codec,
                       chunk_shape=(8, 8, 8), **CODEC_KWARGS[codec])
        st = Store.open(path)
        region = (slice(3, 19), slice(0, 8), slice(5, 21))
        for codec in CODECS:
            whole = st.get(f"f_{codec}")
            assert whole.shape == field_3d.shape
            sub = st.get_region(f"f_{codec}", region)
            np.testing.assert_array_equal(sub, whole[region])

    def test_edge_chunks_unpadded(self, tmp_path, rng):
        # 10x7 field with 4x3 chunks: every edge chunk is smaller.
        data = rng.normal(size=(10, 7)).astype(np.float32)
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", data, codec="raw", chunk_shape=(4, 3))
        out = Store.open(path).get("f")
        np.testing.assert_array_equal(out, data)

    def test_float64_and_1d(self, tmp_path, rng):
        data = rng.normal(size=1000).astype(np.float64)
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", data, codec="raw", chunk_shape=(256,))
        out = Store.open(path).get("f")
        assert out.dtype == np.dtype("<f8")
        np.testing.assert_array_equal(out, data)

    def test_int_selector_collapses_dims(self, tmp_path, field_3d):
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", field_3d, codec="raw", chunk_shape=(8, 8, 8))
        st = Store.open(path)
        plane = st.get_region("f", (slice(0, 24), slice(0, 24), 11))
        assert plane.shape == (24, 24)
        np.testing.assert_array_equal(plane, field_3d[:, :, 11])
        point = st.get_region("f", (1, 2, 3))
        assert point.shape == ()
        assert point == field_3d[1, 2, 3]

    def test_parallel_pack_matches_serial(self, tmp_path, field_3d):
        p1, p2 = tmp_path / "a.dpzs", tmp_path / "b.dpzs"
        with Store.create(p1) as st:
            st.add("f", field_3d, codec="sz", chunk_shape=(8, 8, 8),
                   eps=1e-3, n_jobs=1)
        with Store.create(p2) as st:
            st.add("f", field_3d, codec="sz", chunk_shape=(8, 8, 8),
                   eps=1e-3, n_jobs=4)
        a, b = Store.open(p1), Store.open(p2)
        np.testing.assert_array_equal(a.get("f"), b.get("f"))
        assert a.info("f")["compressed_nbytes"] == \
            b.info("f")["compressed_nbytes"]


class TestRegionDecodesOnlyOverlap:
    def test_bytes_decoded_metric_64cubed(self, tmp_path, rng):
        # Acceptance: a chunk-aligned 16^3 read of a 64^3 field decodes
        # exactly one 16^3 chunk; a worst-case straddling read decodes
        # eight.  Asserted through the store's own counters.
        data = rng.normal(size=(64, 64, 64)).astype(np.float32)
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", data, codec="raw", chunk_shape=(16, 16, 16))
        st = Store.open(path)
        chunk_nbytes = 16 ** 3 * 4

        metrics_reset()
        with use_tracer(Tracer()):
            out = st.get_region(
                "f", (slice(16, 32), slice(16, 32), slice(16, 32)))
            c = counters_snapshot()
        assert out.shape == (16, 16, 16)
        assert c["store.chunks.decoded"] == 1
        assert c["store.bytes.decoded"] == chunk_nbytes
        assert c["store.region.reads"] == 1
        # Compressed bytes read off disk: far less than the whole file.
        assert 0 < c["store.bytes.read"] <= sum(
            r.length for r in st._fields["f"].chunks)

        # Worst-case straddling read on a *cold* handle: eight decodes.
        metrics_reset()
        with use_tracer(Tracer()):
            Store.open(path).get_region(
                "f", (slice(8, 24), slice(8, 24), slice(8, 24)))
            c = counters_snapshot()
        assert c["store.chunks.decoded"] == 8
        assert c["store.bytes.decoded"] == 8 * chunk_nbytes

        # Same straddling read on the warm handle: the chunk decoded by
        # the first read is served from the cache (7 decodes, 1 hit).
        metrics_reset()
        with use_tracer(Tracer()):
            st.get_region("f", (slice(8, 24), slice(8, 24), slice(8, 24)))
            c = counters_snapshot()
        assert c["store.chunks.decoded"] == 7
        assert c["store.bytes.decoded"] == 7 * chunk_nbytes
        assert c["store.cache.hits"] == 1

    def test_whole_read_decodes_everything_once(self, tmp_path, rng):
        data = rng.normal(size=(32, 32)).astype(np.float32)
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", data, codec="raw", chunk_shape=(16, 16))
        metrics_reset()
        with use_tracer(Tracer()):
            Store.open(path).get("f")
            c = counters_snapshot()
        assert c["store.chunks.decoded"] == 4
        assert c["store.bytes.decoded"] == data.nbytes


class TestLazyOpenAndAppend:
    def test_open_reads_header_and_manifest_only(self, tmp_path, field_3d):
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", field_3d, codec="sz", chunk_shape=(8, 8, 8),
                   eps=1e-3)
        # Corrupt every payload byte; a lazy open must still succeed
        # because it only touches the header and the tail manifest.
        st = Store.open(path)
        blob = bytearray(path.read_bytes())
        lo = min(r.offset for r in st._fields["f"].chunks)
        hi = max(r.offset + r.length for r in st._fields["f"].chunks)
        blob[lo:hi] = bytes(hi - lo)
        path.write_bytes(bytes(blob))
        reopened = Store.open(path)
        assert reopened.names() == ["f"]
        assert reopened.info("f")["n_chunks"] == 27
        with pytest.raises(FormatError):
            reopened.get("f")

    def test_append_never_rewrites_payloads(self, tmp_path, field_3d, rng):
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("a", field_3d, codec="sz", chunk_shape=(8, 8, 8),
                   eps=1e-3)
            refs = list(st._fields["a"].chunks)
            lo = min(r.offset for r in refs)
            hi = max(r.offset + r.length for r in refs)
            before = path.read_bytes()[lo:hi]
            st.add("b", rng.normal(size=(6, 6)).astype(np.float32),
                   codec="raw", chunk_shape=(4, 4))
        after = path.read_bytes()[lo:hi]
        assert after == before
        st = Store.open(path)
        assert st.names() == ["a", "b"]
        assert st.get("a").shape == field_3d.shape

    def test_reopen_then_append(self, tmp_path, field_3d, rng):
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("a", field_3d, codec="raw", chunk_shape=(8, 8, 8))
        with Store.open(path) as st:
            st.add("b", rng.normal(size=16).astype(np.float32),
                   codec="raw", chunk_shape=(8,))
        st = Store.open(path)
        assert st.names() == ["a", "b"]
        np.testing.assert_array_equal(st.get("a"), field_3d)

    def test_truncated_manifest_rejected(self, tmp_path, field_3d):
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            st.add("f", field_3d, codec="raw", chunk_shape=(8, 8, 8))
        blob = path.read_bytes()
        path.write_bytes(blob[:-7])
        with pytest.raises(FormatError, match="truncated"):
            Store.open(path)


class TestValidation:
    def test_duplicate_and_empty_rejected(self, tmp_path, field_3d):
        with Store.create(tmp_path / "s.dpzs") as st:
            st.add("f", field_3d, codec="raw")
            with pytest.raises(ConfigError, match="already exists"):
                st.add("f", field_3d, codec="raw")
            with pytest.raises(ConfigError, match="empty"):
                st.add("g", np.empty((0, 4), dtype=np.float32))
            with pytest.raises(ConfigError):
                st.add("", field_3d)
            with pytest.raises(ConfigError, match="unknown codec"):
                st.add("g", field_3d, codec="gzip9000")

    def test_budget_configuration_errors(self, tmp_path, field_3d):
        with Store.create(tmp_path / "s.dpzs") as st:
            with pytest.raises(ConfigError, match="error_budget"):
                st.add("f", field_3d, codec="auto")
            with pytest.raises(ConfigError, match="error_budget"):
                st.add("f", field_3d, codec="auto", error_budget=0.0)
            with pytest.raises(ConfigError, match="only meaningful"):
                st.add("f", field_3d, codec="sz", error_budget=1e-3,
                       eps=1e-3)

    def test_missing_field_rejected(self, tmp_path):
        st = Store.create(tmp_path / "s.dpzs")
        with pytest.raises(ConfigError, match="no field"):
            st.get("nope")


class TestAutoSelection:
    def test_budget_never_violated(self, tmp_path, rng):
        # Acceptance: on a mixed-texture synthetic suite the selected
        # per-chunk codecs never exceed the absolute error budget.
        g = np.linspace(-1, 1, 32)
        zz, yy, xx = np.meshgrid(g, g, g, indexing="ij")
        smooth = np.sin(4 * xx) * np.cos(3 * yy) * zz
        noisy = rng.normal(size=(32, 32, 32))
        mixed = np.where(xx > 0, smooth, 0.2 * noisy)
        budget = 1e-3
        path = tmp_path / "s.dpzs"
        with Store.create(path) as st:
            for fname, data in (("smooth", smooth), ("noisy", noisy),
                                ("mixed", mixed)):
                st.add(fname, data.astype(np.float32), codec="auto",
                       chunk_shape=(16, 16, 16), error_budget=budget)
        st = Store.open(path)
        for fname, data in (("smooth", smooth), ("noisy", noisy),
                            ("mixed", mixed)):
            out = st.get(fname)
            err = float(np.max(np.abs(out - data.astype(np.float32))))
            assert err <= budget, (fname, err)
            info = st.info(fname)
            assert info["error_budget"] == budget
            assert set(info["chunk_codecs"]) <= set(AUTO_CANDIDATES) | {"raw"}

    def test_compress_chunk_auto_returns_valid_codec(self, tiny_3d):
        codec, payload = compress_chunk_auto(tiny_3d, 1e-3)
        assert codec in set(AUTO_CANDIDATES) | {"raw"}
        assert isinstance(payload, bytes) and payload

    def test_tiny_budget_still_honored(self, rng):
        # A budget below float32 noise floor: whatever wins (zfp's
        # accuracy mode is near-lossless there, raw is the backstop),
        # the full-chunk verification must hold the bound.
        chunk = rng.normal(size=(8, 8, 8)).astype(np.float32)
        budget = 1e-12
        codec, payload = compress_chunk_auto(chunk, budget)
        assert codec in set(AUTO_CANDIDATES) | {"raw"}
        from repro.archive import CODECS as _C
        out = _C[codec][1](payload)
        assert float(np.max(np.abs(out - chunk))) <= budget

    def test_raw_fallback_when_no_candidate_fits(self, monkeypatch, rng):
        # Force every lossy candidate to miss the budget: the selector
        # must land on lossless raw rather than ship a violation.
        import repro.store.select as select
        from repro.archive import CODECS as _C
        chunk = rng.normal(size=(8, 8)).astype(np.float32)

        def off_by_one(data, **kw):
            return _C["raw"][0](np.asarray(data) + 1.0)

        real_fns = select._fns

        def fake_fns(name):
            if name in AUTO_CANDIDATES:
                return off_by_one, _C["raw"][1]
            return real_fns(name)

        monkeypatch.setattr(select, "_fns", fake_fns)
        codec, payload = compress_chunk_auto(chunk, 1e-6)
        assert codec == "raw"
        np.testing.assert_array_equal(_C["raw"][1](payload), chunk)


class TestFromArchive:
    def test_repack_preserves_fields_and_codecs(self, tmp_path, field_3d,
                                                rng):
        ar = FieldArchive()
        ar.add("a", field_3d, codec="raw")
        ar.add("b", rng.normal(size=(20, 20)).astype(np.float32),
               codec="sz", rel_eps=1e-4)
        apath = tmp_path / "x.dpza"
        ar.save(apath)
        spath = tmp_path / "x.dpzs"
        st = Store.from_archive(apath, spath, chunk_shape=None)
        assert st.names() == ["a", "b"]
        assert st.info("a")["codec"] == "raw"
        assert st.info("b")["codec"] == "sz"
        np.testing.assert_array_equal(st.get("a"), field_3d)
        reopened = Store.open(spath)
        assert reopened.get("b").shape == (20, 20)
