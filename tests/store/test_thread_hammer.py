"""Thread-safety hammer for a shared :class:`Store` handle.

``dpz serve`` hands one ``Store`` to a pool of worker threads, so the
read path -- ``get_region``/``get`` through the chunk cache -- must be
safe to hammer concurrently *and* return bit-identical results
regardless of interleaving.  These tests run green under
``DPZ_SANITIZE=1`` too: every lock on the path is a checked lock, so
an ordering violation fails deterministically here.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.coalesce import CoalescingChunkCache
from repro.store import Store

N_THREADS = 8
N_ITERS = 12


@pytest.fixture(scope="module")
def hammer_store(tmp_path_factory):
    rng = np.random.default_rng(42)
    path = str(tmp_path_factory.mktemp("hammer") / "hammer.dpzs")
    vol = rng.standard_normal((24, 24, 24)).astype(np.float32)
    plane = (np.outer(np.sin(np.linspace(0, 6, 40)),
                      np.cos(np.linspace(0, 4, 40)))
             .astype(np.float64))
    with Store.create(path) as st:
        st.add("vol", vol, codec="sz", eps=1e-3,
               chunk_shape=(8, 8, 8))
        st.add("plane", plane, codec="raw", chunk_shape=(16, 16))
    return path


def _region_requests():
    """A deterministic mixed bag of region requests."""
    rng = np.random.default_rng(3)
    out = []
    for _ in range(6):
        lo = [int(rng.integers(0, 12)) for _ in range(3)]
        hi = [int(rng.integers(lo_i + 1, 25)) for lo_i in lo]
        out.append(("vol", tuple(slice(lo_i, hi_i)
                                 for lo_i, hi_i in zip(lo, hi))))
    out.append(("vol", (slice(None, None), 5, slice(0, 24))))
    out.append(("plane", (slice(3, 37), slice(0, 40))))
    out.append(("plane", (17, slice(None, None))))
    return out


@pytest.fixture(scope="module")
def expected(hammer_store):
    """Reference results from a private, uncached handle."""
    ref = Store.open(hammer_store, cache_bytes=0)
    region_results = [(name, region, ref.get_region(name, region))
                      for name, region in _region_requests()]
    return region_results, ref.get("plane")


def _hammer(store, expected):
    """Run the concurrent read storm; returns collected mismatches."""
    region_results, whole_plane = expected
    barrier = threading.Barrier(N_THREADS)
    failures = []

    def worker(seed):
        rng = np.random.default_rng(seed)
        barrier.wait()
        try:
            for _ in range(N_ITERS):
                name, region, want = region_results[
                    int(rng.integers(len(region_results)))]
                got = store.get_region(name, region)
                if not np.array_equal(got, want):
                    failures.append((name, region))
            # Whole-field reads ride the same cache path.
            if not np.array_equal(store.get("plane"), whole_plane):
                failures.append("whole-plane mismatch")
        except Exception as exc:
            failures.append(exc)

    threads = [threading.Thread(target=worker, args=(1000 + i,))
               for i in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    assert all(not t.is_alive() for t in threads)
    return failures


@pytest.mark.parametrize("cache_bytes", [0, 1 << 22],
                         ids=["uncached", "cached"])
def test_shared_handle_hammer(hammer_store, expected, cache_bytes):
    store = Store.open(hammer_store, cache_bytes=cache_bytes)
    assert _hammer(store, expected) == []


def test_shared_handle_hammer_with_coalescing_cache(hammer_store,
                                                    expected):
    """The serve-grade singleflight cache under the same storm."""
    store = Store.open(
        hammer_store, chunk_cache=CoalescingChunkCache(1 << 22))
    assert _hammer(store, expected) == []


def test_hammer_under_tracer(hammer_store, expected):
    """Metrics emission on the hot path must also be thread-safe."""
    from repro.observability import (
        Tracer,
        get_registry,
        metrics_snapshot,
        use_tracer,
    )

    get_registry().clear()
    store = Store.open(
        hammer_store, chunk_cache=CoalescingChunkCache(1 << 22))
    with use_tracer(Tracer(retain_spans=False)):
        failures = _hammer(store, expected)
    assert failures == []
    snap = metrics_snapshot()
    assert snap["counters"]["store.region.reads"] > 0
    get_registry().clear()
