"""Tests for the one-call public API."""

from __future__ import annotations

import pytest

import repro
from repro.analysis.metrics import psnr
from repro.api import dpz_compress, dpz_decompress, dpz_probe, scheme_config
from repro.errors import ConfigError


def test_top_level_exports():
    for name in ("dpz_compress", "dpz_decompress", "DPZCompressor",
                 "sz_compress", "zfp_compress", "DPZ_L", "DPZ_S"):
        assert hasattr(repro, name)
    assert repro.__version__


def test_compress_decompress_roundtrip(smooth_2d):
    blob = dpz_compress(smooth_2d, scheme="s", tve_nines=5)
    recon = dpz_decompress(blob)
    assert recon.shape == smooth_2d.shape
    assert psnr(smooth_2d, recon) > 40.0


def test_knee_shorthand(smooth_2d):
    blob = dpz_compress(smooth_2d, scheme="l", knee=True)
    assert dpz_decompress(blob).shape == smooth_2d.shape


def test_full_config_passthrough(smooth_2d):
    cfg = repro.DPZ_S.with_tve_nines(4)
    blob = dpz_compress(smooth_2d, config=cfg)
    assert dpz_decompress(blob).shape == smooth_2d.shape


def test_probe(smooth_2d):
    report = dpz_probe(smooth_2d, scheme="l", tve_nines=4)
    assert report.k_estimate >= 1


class TestSchemeConfig:
    def test_scheme_letters(self):
        assert scheme_config("l").p == 1e-3
        assert scheme_config("S").p == 1e-4  # case-insensitive

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError):
            scheme_config("x")

    def test_nines_set(self):
        cfg = scheme_config("l", tve_nines=6)
        assert abs(cfg.tve - (1 - 1e-6)) < 1e-12

    def test_knee_overrides_nines(self):
        cfg = scheme_config("l", tve_nines=6, knee=True, knee_fit="polyn")
        assert cfg.k_mode == "knee" and cfg.knee_fit == "polyn"

    def test_sampling_flag(self):
        assert scheme_config("l", use_sampling=True).use_sampling
