"""Tests for the multi-field archive layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import max_abs_error, psnr
from repro.archive import CODECS, FieldArchive
from repro.errors import ConfigError, FormatError


@pytest.fixture
def fields(rng, smooth_2d, rough_1d):
    return {"smooth": smooth_2d, "rough": rough_1d}


class TestBuildAndRead:
    def test_roundtrip_mixed_codecs(self, fields):
        ar = FieldArchive()
        ar.add("smooth", fields["smooth"], codec="dpz", scheme="s",
               tve_nines=6)
        ar.add("rough", fields["rough"], codec="sz", rel_eps=1e-4)
        restored = FieldArchive.from_bytes(ar.to_bytes())
        assert restored.names() == ["smooth", "rough"]
        assert psnr(fields["smooth"], restored.get("smooth")) > 50.0
        bound = 1e-4 * float(fields["rough"].max() - fields["rough"].min())
        assert max_abs_error(fields["rough"],
                             restored.get("rough")) <= bound * (1 + 1e-5)

    def test_raw_codec_lossless(self, smooth_2d):
        ar = FieldArchive()
        ar.add("exact", smooth_2d, codec="raw")
        out = FieldArchive.from_bytes(ar.to_bytes()).get("exact")
        np.testing.assert_array_equal(out, smooth_2d)
        assert out.dtype == smooth_2d.dtype

    def test_all_codecs_roundtrip(self, tiny_3d):
        kwargs = {
            "dpz": {"scheme": "s", "tve_nines": 6},
            "sz": {"eps": 1e-4},
            "zfp": {"rate": 12.0},
            "mgard": {"eps": 1e-4},
            "dctz": {"p": 1e-4, "index_bytes": 2},
            "tucker": {"target": 0.99999},
            "raw": {},
            "delta": {},
            "scale-offset": {"eps": 1e-4},
        }
        ar = FieldArchive()
        for codec in CODECS:
            ar.add(f"f_{codec}", tiny_3d, codec=codec, **kwargs[codec])
        restored = FieldArchive.from_bytes(ar.to_bytes())
        for codec in CODECS:
            out = restored.get(f"f_{codec}")
            assert out.shape == tiny_3d.shape
            assert psnr(tiny_3d, out) > 35.0 or codec == "raw"

    def test_duplicate_field_rejected(self, smooth_2d):
        ar = FieldArchive()
        ar.add("x", smooth_2d, codec="raw")
        with pytest.raises(ConfigError, match="already exists"):
            ar.add("x", smooth_2d * 2, codec="raw")
        # The original entry is untouched by the failed add.
        assert ar.names() == ["x"]
        np.testing.assert_array_equal(ar.get("x"), smooth_2d)

    def test_info_and_total_cr(self, smooth_2d):
        ar = FieldArchive()
        ar.add("a", smooth_2d, codec="dpz")
        info = ar.info("a")
        assert info["codec"] == "dpz"
        assert info["cr"] > 1.0
        assert ar.total_cr() > 1.0

    def test_file_roundtrip(self, tmp_path, smooth_2d):
        ar = FieldArchive()
        ar.add("f", smooth_2d, codec="dpz", scheme="l", tve_nines=4)
        path = tmp_path / "bundle.dpza"
        ar.save(path)
        out = FieldArchive.load(path).get("f")
        assert out.shape == smooth_2d.shape


class TestValidation:
    def test_unknown_codec_rejected(self, smooth_2d):
        with pytest.raises(ConfigError):
            FieldArchive().add("x", smooth_2d, codec="gzip9000")

    def test_bad_name_rejected(self, smooth_2d):
        with pytest.raises(ConfigError):
            FieldArchive().add("", smooth_2d)
        with pytest.raises(ConfigError):
            FieldArchive().add("a\x00b", smooth_2d)

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigError):
            FieldArchive().get("nope")

    def test_empty_array_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            FieldArchive().add("x", np.empty((0, 4), dtype=np.float32),
                               codec="raw")
        with pytest.raises(ConfigError, match="empty"):
            FieldArchive().add("y", np.array([], dtype=np.float64))

    def test_corrupt_archive_rejected(self, smooth_2d):
        ar = FieldArchive()
        ar.add("x", smooth_2d, codec="raw")
        blob = ar.to_bytes()
        with pytest.raises(FormatError):
            FieldArchive.from_bytes(b"NOPE" + blob[4:])
        with pytest.raises(FormatError):
            FieldArchive.from_bytes(blob[: len(blob) // 2])
