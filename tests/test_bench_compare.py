"""Tests for the bench-regression gate (``benchmarks/compare.py``)."""

from __future__ import annotations

import copy
import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

from compare import compare, main  # noqa: E402


def _record(cr=10.0, thr=50.0, dec=200.0, shares=None):
    return {
        "fields": {
            "Isotropic": {
                "cr": cr,
                "throughput_mb_s": thr,
                "decompress_mb_s": dec,
                "stage_shares": shares or {"dpz.pca": 0.6, "dpz.encode": 0.2},
            }
        }
    }


def _quiet(*_a, **_k):
    pass


def test_identical_records_pass():
    base = _record()
    assert compare(base, copy.deepcopy(base), log=_quiet) == []


def test_improvements_pass():
    base = _record()
    better = _record(cr=12.0, thr=80.0, dec=300.0,
                     shares={"dpz.pca": 0.4, "dpz.encode": 0.2})
    assert compare(base, better, log=_quiet) == []


def test_cr_drop_beyond_tolerance_fails():
    base = _record(cr=10.0)
    worse = _record(cr=9.5)  # -5%
    failures = compare(base, worse, cr_tol=0.02, log=_quiet)
    assert len(failures) == 1 and "cr dropped" in failures[0]
    # Within tolerance: fine.
    assert compare(base, _record(cr=9.9), cr_tol=0.02, log=_quiet) == []


def test_throughput_collapse_fails():
    base = _record(thr=50.0)
    worse = _record(thr=20.0)  # -60%
    failures = compare(base, worse, throughput_tol=0.5, log=_quiet)
    assert len(failures) == 1 and "throughput_mb_s" in failures[0]


def test_stage_share_growth_fails():
    base = _record()
    worse = _record(shares={"dpz.pca": 0.75, "dpz.encode": 0.2})  # +0.15
    failures = compare(base, worse, share_tol=0.10, log=_quiet)
    assert len(failures) == 1 and "dpz.pca" in failures[0]


def test_missing_field_fails():
    base = _record()
    failures = compare(base, {"fields": {}}, log=_quiet)
    assert failures and "missing" in failures[0]


@pytest.mark.parametrize("worse,code", [
    (_record(), 0),
    (_record(cr=5.0), 1),
])
def test_main_exit_codes(tmp_path, capsys, worse, code):
    b = tmp_path / "base.json"
    c = tmp_path / "cand.json"
    b.write_text(json.dumps(_record()))
    c.write_text(json.dumps(worse))
    assert main([str(b), str(c)]) == code
    out = capsys.readouterr().out
    if code:
        assert "REGRESSION" in out
    else:
        assert "within tolerance" in out


def test_main_requires_candidate_or_run(tmp_path):
    b = tmp_path / "base.json"
    b.write_text(json.dumps(_record()))
    with pytest.raises(SystemExit):
        main([str(b)])


def test_committed_baseline_parses_with_current_gate():
    """The in-repo BENCH files stay consumable by compare()."""
    root = pathlib.Path(__file__).resolve().parent.parent
    base = json.loads((root / "BENCH_pr1.json").read_text())
    cand = json.loads((root / "BENCH_pr2.json").read_text())
    failures = compare(base, cand, throughput_tol=0.75, share_tol=0.15,
                       log=_quiet)
    assert failures == []
