"""Tests for the bench-regression gate (``benchmarks/compare.py``)."""

from __future__ import annotations

import copy
import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

from compare import compare, main  # noqa: E402


def _record(cr=10.0, thr=50.0, dec=200.0, shares=None):
    return {
        "fields": {
            "Isotropic": {
                "cr": cr,
                "throughput_mb_s": thr,
                "decompress_mb_s": dec,
                "stage_shares": shares or {"dpz.pca": 0.6, "dpz.encode": 0.2},
            }
        }
    }


def _quiet(*_a, **_k):
    pass


def test_identical_records_pass():
    base = _record()
    assert compare(base, copy.deepcopy(base), log=_quiet) == []


def test_improvements_pass():
    base = _record()
    better = _record(cr=12.0, thr=80.0, dec=300.0,
                     shares={"dpz.pca": 0.4, "dpz.encode": 0.2})
    assert compare(base, better, log=_quiet) == []


def test_cr_drop_beyond_tolerance_fails():
    base = _record(cr=10.0)
    worse = _record(cr=9.5)  # -5%
    failures = compare(base, worse, cr_tol=0.02, log=_quiet)
    assert len(failures) == 1 and "cr dropped" in failures[0]
    # Within tolerance: fine.
    assert compare(base, _record(cr=9.9), cr_tol=0.02, log=_quiet) == []


def test_throughput_collapse_fails():
    base = _record(thr=50.0)
    worse = _record(thr=20.0)  # -60%
    failures = compare(base, worse, throughput_tol=0.5, log=_quiet)
    assert len(failures) == 1 and "throughput_mb_s" in failures[0]


def test_stage_share_growth_fails():
    base = _record()
    worse = _record(shares={"dpz.pca": 0.75, "dpz.encode": 0.2})  # +0.15
    failures = compare(base, worse, share_tol=0.10, log=_quiet)
    assert len(failures) == 1 and "dpz.pca" in failures[0]


def test_missing_field_fails():
    base = _record()
    failures = compare(base, {"fields": {}}, log=_quiet)
    assert failures and "missing" in failures[0]


@pytest.mark.parametrize("worse,code", [
    (_record(), 0),
    (_record(cr=5.0), 1),
])
def test_main_exit_codes(tmp_path, capsys, worse, code):
    b = tmp_path / "base.json"
    c = tmp_path / "cand.json"
    b.write_text(json.dumps(_record()))
    c.write_text(json.dumps(worse))
    assert main([str(b), str(c)]) == code
    out = capsys.readouterr().out
    if code:
        assert "REGRESSION" in out
    else:
        assert "within tolerance" in out


def test_main_requires_candidate_or_run(tmp_path):
    b = tmp_path / "base.json"
    b.write_text(json.dumps(_record()))
    with pytest.raises(SystemExit):
        main([str(b)])


def test_committed_baseline_parses_with_current_gate():
    """The in-repo BENCH files stay consumable by compare()."""
    root = pathlib.Path(__file__).resolve().parent.parent
    base = json.loads((root / "BENCH_pr1.json").read_text())
    cand = json.loads((root / "BENCH_pr2.json").read_text())
    failures = compare(base, cand, throughput_tol=0.75, share_tol=0.15,
                       log=_quiet)
    assert failures == []


def _with_chunk_hist(rec, p50, p95, count=8):
    rec = copy.deepcopy(rec)
    rec["metrics"] = {"histograms": {"parallel.chunk.seconds": {
        "count": count, "p50": p50, "p95": p95}}}
    return rec


def test_chunk_latency_within_tolerance_passes():
    base = _with_chunk_hist(_record(), p50=1e-3, p95=3e-3)
    cand = _with_chunk_hist(_record(), p50=1.5e-3, p95=4e-3)  # +50%, +33%
    assert compare(base, cand, chunk_latency_tol=1.0, log=_quiet) == []


def test_chunk_latency_regression_fails():
    base = _with_chunk_hist(_record(), p50=1e-3, p95=3e-3)
    cand = _with_chunk_hist(_record(), p50=2.5e-3, p95=3e-3)  # p50 +150%
    failures = compare(base, cand, chunk_latency_tol=1.0, log=_quiet)
    assert len(failures) == 1 and "p50" in failures[0]


def test_chunk_latency_skipped_without_snapshot():
    # Baselines predating the metrics snapshot (BENCH_pr1/pr2) or runs
    # with no parallel work never trip the gate.
    base = _record()
    cand = _with_chunk_hist(_record(), p50=1.0, p95=2.0)
    assert compare(base, cand, log=_quiet) == []
    empty = _with_chunk_hist(_record(), p50=0.0, p95=0.0, count=0)
    assert compare(cand, empty, log=_quiet) == []


def test_committed_pr3_record_exercises_chunk_gate():
    root = pathlib.Path(__file__).resolve().parent.parent
    pr3 = json.loads((root / "BENCH_pr3.json").read_text())
    assert pr3["bench"] == "pr3-observability"
    hist = pr3["metrics"]["histograms"]["parallel.chunk.seconds"]
    assert hist["count"] > 0 and 0 < hist["p50"] <= hist["p95"]
    assert pr3["metrics"]["gauges"]["quality.psnr_db"] > 0
    # Self-compare runs the gate (both sides have the histogram).
    assert compare(pr3, copy.deepcopy(pr3), log=_quiet) == []


def _with_store(rec, amp_warm, n_reads=64):
    rec = copy.deepcopy(rec)
    rec["store"] = {"region_warm": {
        "n_reads": n_reads, "edge": 16, "amplification": amp_warm}}
    return rec


def test_throughput_floor_met_passes():
    base = _record(thr=50.0)
    cand = _record(thr=110.0)  # 2.2x
    assert compare(base, cand, throughput_min_ratio=2.0,
                   min_ratio_fields=1, log=_quiet) == []


def test_throughput_floor_unmet_fails():
    base = _record(thr=50.0)
    cand = _record(thr=80.0)  # 1.6x
    failures = compare(base, cand, throughput_min_ratio=2.0,
                       min_ratio_fields=1, log=_quiet)
    assert len(failures) == 1 and "throughput" in failures[0]


def test_throughput_floor_counts_fields():
    # Two of three fields clear 2x: passes with min_ratio_fields=2,
    # fails with 3.
    base = _record(thr=50.0)
    cand = _record(thr=110.0)
    for name, thr in (("FLDSC", 120.0), ("HACC-x", 60.0)):
        base["fields"][name] = dict(base["fields"]["Isotropic"])
        cand["fields"][name] = dict(cand["fields"]["Isotropic"],
                                    throughput_mb_s=thr)
        base["fields"][name]["throughput_mb_s"] = 50.0
    assert compare(base, cand, throughput_min_ratio=2.0,
                   min_ratio_fields=2, log=_quiet) == []
    failures = compare(base, cand, throughput_min_ratio=2.0,
                       min_ratio_fields=3, log=_quiet)
    assert len(failures) == 1


def test_amplification_cap():
    base = _record()
    good = _with_store(_record(), amp_warm=0.4)
    bad = _with_store(_record(), amp_warm=3.1)
    assert compare(base, good, amplification_max=2.0, log=_quiet) == []
    failures = compare(base, bad, amplification_max=2.0, log=_quiet)
    assert len(failures) == 1 and "amplification" in failures[0]
    # No store section at all: the cap skips silently.
    assert compare(base, _record(), amplification_max=2.0,
                   log=_quiet) == []


def test_store_only_candidate_skips_field_gates():
    # bench_store.py output has no "fields" key; comparing it against
    # a full record must only run the store gates.
    base = _record()
    base["store"] = {"region": {"n_reads": 64, "edge": 16,
                                "p50_s": 1e-3, "p95_s": 2e-3}}
    cand = {"store": {"region": {"n_reads": 64, "edge": 16,
                                 "p50_s": 1e-3, "p95_s": 2e-3}}}
    assert compare(base, cand, log=_quiet) == []


def test_region_latency_skipped_for_mismatched_read_counts():
    base = {"fields": {}, "store": {"region": {
        "n_reads": 64, "edge": 16, "p50_s": 1e-4, "p95_s": 2e-4}}}
    cand = {"fields": {}, "store": {"region": {
        "n_reads": 8, "edge": 16, "p50_s": 1.0, "p95_s": 2.0}}}
    assert compare(base, cand, region_latency_tol=1.0, log=_quiet) == []


def test_committed_pr7_record_meets_perf_gates():
    """The raw-speed acceptance numbers hold in the committed record."""
    root = pathlib.Path(__file__).resolve().parent.parent
    pr3 = json.loads((root / "BENCH_pr3.json").read_text())
    pr5 = json.loads((root / "BENCH_pr5.json").read_text())
    pr7 = json.loads((root / "BENCH_pr7.json").read_text())
    assert pr7["bench"] == "pr7-raw-speed"
    failures = compare(pr3, pr7, throughput_tol=0.75, share_tol=0.30,
                       chunk_latency_tol=3.0, throughput_min_ratio=2.0,
                       min_ratio_fields=2, log=_quiet)
    assert failures == []
    failures = compare(pr5, pr7, region_latency_tol=3.0,
                       amplification_max=2.0, log=_quiet)
    assert failures == []
    assert pr7["store"]["region_warm"]["amplification"] < 2.0
    assert pr5["store"]["region"]["amplification"] > 7.0
