"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets.io import load_field, save_field


@pytest.fixture
def field_file(tmp_path, smooth_2d):
    path = tmp_path / "field.npy"
    save_field(path, smooth_2d)
    return path


def test_parser_subcommands():
    parser = build_parser()
    for cmd in ("compress", "decompress", "probe", "info", "datasets"):
        args = ["compress", "a", "b"] if cmd == "compress" else \
            {"decompress": ["decompress", "a", "b"],
             "probe": ["probe", "a"],
             "info": ["info", "a"],
             "datasets": ["datasets"]}[cmd]
        assert parser.parse_args(args).command == cmd


def test_compress_decompress_cycle(tmp_path, field_file, smooth_2d, capsys):
    comp = tmp_path / "out.dpz"
    back = tmp_path / "back.npy"
    assert main(["compress", str(field_file), str(comp),
                 "--scheme", "s", "--nines", "5", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "CR" in out and "stage1&2" in out
    assert main(["decompress", str(comp), str(back)]) == 0
    recon = load_field(back)
    assert recon.shape == smooth_2d.shape


def test_compress_raw_f32_with_shape(tmp_path, smooth_2d):
    raw = tmp_path / "f.f32"
    smooth_2d.astype("<f4").tofile(raw)
    comp = tmp_path / "f.dpz"
    h, w = smooth_2d.shape
    assert main(["compress", str(raw), str(comp),
                 "--shape", str(h), str(w)]) == 0
    assert comp.stat().st_size > 0


def test_knee_flag(tmp_path, field_file):
    comp = tmp_path / "k.dpz"
    assert main(["compress", str(field_file), str(comp), "--knee"]) == 0


def test_probe_command(field_file, capsys):
    assert main(["probe", str(field_file), "--nines", "4"]) == 0
    out = capsys.readouterr().out
    assert "estimated k" in out and "preliminary CR" in out


def test_info_command(tmp_path, field_file, capsys):
    comp = tmp_path / "x.dpz"
    main(["compress", str(field_file), str(comp)])
    capsys.readouterr()
    assert main(["info", str(comp)]) == 0
    out = capsys.readouterr().out
    assert "components" in out and "quantizer" in out


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "Isotropic" in out and "HACC-vx" in out


def test_sampling_flag(tmp_path, field_file):
    comp = tmp_path / "s.dpz"
    assert main(["compress", str(field_file), str(comp),
                 "--sampling", "--nines", "4"]) == 0


def test_trace_command_to_file(tmp_path, field_file, capsys):
    import json

    out = tmp_path / "trace.ndjson"
    assert main(["trace", str(field_file), "--out", str(out),
                 "--no-runlog"]) == 0
    printed = capsys.readouterr().out
    assert "spans ->" in printed and "dpz.pca" in printed
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert lines[0]["event"] == "meta"
    assert lines[0]["dataset"] == str(field_file)
    names = {rec["name"] for rec in lines if rec["event"] == "span"}
    # Both directions of the pipeline appear in one trace.
    assert "dpz.pca" in names and "dpz.serialize" in names
    assert "dpz.deserialize" in names and "dpz.reassemble" in names


def test_trace_command_registry_dataset_stdout(capsys):
    import json

    assert main(["trace", "CLDLOW", "--size", "small",
                 "--no-runlog"]) == 0
    lines = [json.loads(line)
             for line in capsys.readouterr().out.splitlines()]
    meta = lines[0]
    assert meta["event"] == "meta" and meta["dataset"] == "CLDLOW"
    assert meta["cr"] > 1.0
    assert any(rec["event"] == "span" for rec in lines)


def test_trace_command_parser():
    parser = build_parser()
    args = parser.parse_args(["trace", "Isotropic", "--scheme", "s",
                              "--nines", "5", "--out", "t.ndjson"])
    assert args.command == "trace" and args.scheme == "s"


def test_trace_unknown_input_one_line_error(capsys):
    assert main(["trace", "no_such_dataset_or_file"]) == 2
    captured = capsys.readouterr()
    err_lines = [ln for ln in captured.err.splitlines() if ln]
    assert len(err_lines) == 1
    assert "no_such_dataset_or_file" in err_lines[0]
    assert "Traceback" not in captured.err


def test_trace_without_input_or_diff_errors(capsys):
    assert main(["trace"]) == 2
    assert "error" in capsys.readouterr().err


def test_trace_flamegraph_and_runlog(tmp_path, field_file, capsys):
    out = tmp_path / "t.ndjson"
    fg = tmp_path / "t.html"
    runlog = tmp_path / "runs.ndjson"
    assert main(["trace", str(field_file), "--out", str(out),
                 "--flamegraph", str(fg), "--runlog", str(runlog)]) == 0
    printed = capsys.readouterr().out
    assert "flamegraph" in printed and "run " in printed
    html = fg.read_text()
    assert html.startswith("<!DOCTYPE html>") and "var DATA =" in html
    import json
    records = [json.loads(line)
               for line in runlog.read_text().splitlines()]
    assert len(records) == 1 and records[0]["record"] == "dpz-run"
    # Quality telemetry is on during traced CLI runs.
    assert records[0]["quality"]["psnr_db"] > 0
    assert "metrics" in records[0]


def test_trace_diff_mode(tmp_path, field_file, capsys):
    a, b = tmp_path / "a.ndjson", tmp_path / "b.ndjson"
    for path in (a, b):
        assert main(["trace", str(field_file), "--out", str(path),
                     "--no-runlog"]) == 0
    capsys.readouterr()
    assert main(["trace", "--diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "dpz.pca" in out and "total" in out


def test_trace_diff_bad_file_one_line_error(tmp_path, capsys):
    bad = tmp_path / "bad.ndjson"
    bad.write_text('{"event": "nope"}\n')
    assert main(["trace", "--diff", str(bad), str(bad)]) == 2
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err and "error" in captured.err


def test_runs_cli_cycle(tmp_path, field_file, capsys):
    runlog = tmp_path / "runs.ndjson"
    for nines in ("4", "5"):
        assert main(["trace", str(field_file), "--nines", nines,
                     "--out", str(tmp_path / f"t{nines}.ndjson"),
                     "--runlog", str(runlog)]) == 0
    capsys.readouterr()

    assert main(["runs", "list", "--file", str(runlog)]) == 0
    listing = capsys.readouterr().out
    assert listing.count("\n") >= 2 and "run_id" in listing

    assert main(["runs", "show", "0", "--file", str(runlog)]) == 0
    import json
    shown = json.loads(capsys.readouterr().out)
    assert shown["record"] == "dpz-run"

    assert main(["runs", "diff", "0", "1", "--file", str(runlog)]) == 0
    diff = capsys.readouterr().out
    assert "config differs" in diff and "cr" in diff


def test_runs_missing_registry_one_line_error(tmp_path, capsys):
    assert main(["runs", "list", "--file",
                 str(tmp_path / "absent.ndjson")]) == 2
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err
    assert "no run registry" in captured.err


def test_runs_unknown_key_one_line_error(tmp_path, field_file, capsys):
    runlog = tmp_path / "runs.ndjson"
    assert main(["trace", str(field_file), "--out",
                 str(tmp_path / "t.ndjson"),
                 "--runlog", str(runlog)]) == 0
    capsys.readouterr()
    assert main(["runs", "show", "zzzz", "--file", str(runlog)]) == 2
    assert "no run matches" in capsys.readouterr().err
