"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets.io import load_field, save_field


@pytest.fixture
def field_file(tmp_path, smooth_2d):
    path = tmp_path / "field.npy"
    save_field(path, smooth_2d)
    return path


def test_parser_subcommands():
    parser = build_parser()
    for cmd in ("compress", "decompress", "probe", "info", "datasets"):
        args = ["compress", "a", "b"] if cmd == "compress" else \
            {"decompress": ["decompress", "a", "b"],
             "probe": ["probe", "a"],
             "info": ["info", "a"],
             "datasets": ["datasets"]}[cmd]
        assert parser.parse_args(args).command == cmd


def test_compress_decompress_cycle(tmp_path, field_file, smooth_2d, capsys):
    comp = tmp_path / "out.dpz"
    back = tmp_path / "back.npy"
    assert main(["compress", str(field_file), str(comp),
                 "--scheme", "s", "--nines", "5", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "CR" in out and "stage1&2" in out
    assert main(["decompress", str(comp), str(back)]) == 0
    recon = load_field(back)
    assert recon.shape == smooth_2d.shape


def test_compress_raw_f32_with_shape(tmp_path, smooth_2d):
    raw = tmp_path / "f.f32"
    smooth_2d.astype("<f4").tofile(raw)
    comp = tmp_path / "f.dpz"
    h, w = smooth_2d.shape
    assert main(["compress", str(raw), str(comp),
                 "--shape", str(h), str(w)]) == 0
    assert comp.stat().st_size > 0


def test_knee_flag(tmp_path, field_file):
    comp = tmp_path / "k.dpz"
    assert main(["compress", str(field_file), str(comp), "--knee"]) == 0


def test_probe_command(field_file, capsys):
    assert main(["probe", str(field_file), "--nines", "4"]) == 0
    out = capsys.readouterr().out
    assert "estimated k" in out and "preliminary CR" in out


def test_info_command(tmp_path, field_file, capsys):
    comp = tmp_path / "x.dpz"
    main(["compress", str(field_file), str(comp)])
    capsys.readouterr()
    assert main(["info", str(comp)]) == 0
    out = capsys.readouterr().out
    assert "components" in out and "quantizer" in out


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "Isotropic" in out and "HACC-vx" in out


def test_sampling_flag(tmp_path, field_file):
    comp = tmp_path / "s.dpz"
    assert main(["compress", str(field_file), str(comp),
                 "--sampling", "--nines", "4"]) == 0


def test_trace_command_to_file(tmp_path, field_file, capsys):
    import json

    out = tmp_path / "trace.ndjson"
    assert main(["trace", str(field_file), "--out", str(out),
                 "--no-runlog"]) == 0
    printed = capsys.readouterr().out
    assert "spans ->" in printed and "dpz.pca" in printed
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert lines[0]["event"] == "meta"
    assert lines[0]["dataset"] == str(field_file)
    names = {rec["name"] for rec in lines if rec["event"] == "span"}
    # Both directions of the pipeline appear in one trace.
    assert "dpz.pca" in names and "dpz.serialize" in names
    assert "dpz.deserialize" in names and "dpz.reassemble" in names


def test_trace_command_registry_dataset_stdout(capsys):
    import json

    assert main(["trace", "CLDLOW", "--size", "small",
                 "--no-runlog"]) == 0
    lines = [json.loads(line)
             for line in capsys.readouterr().out.splitlines()]
    meta = lines[0]
    assert meta["event"] == "meta" and meta["dataset"] == "CLDLOW"
    assert meta["cr"] > 1.0
    assert any(rec["event"] == "span" for rec in lines)


def test_trace_command_parser():
    parser = build_parser()
    args = parser.parse_args(["trace", "Isotropic", "--scheme", "s",
                              "--nines", "5", "--out", "t.ndjson"])
    assert args.command == "trace" and args.scheme == "s"


def test_trace_unknown_input_one_line_error(capsys):
    assert main(["trace", "no_such_dataset_or_file"]) == 2
    captured = capsys.readouterr()
    err_lines = [ln for ln in captured.err.splitlines() if ln]
    assert len(err_lines) == 1
    assert "no_such_dataset_or_file" in err_lines[0]
    assert "Traceback" not in captured.err


def test_trace_without_input_or_diff_errors(capsys):
    assert main(["trace"]) == 2
    assert "error" in capsys.readouterr().err


def test_trace_flamegraph_and_runlog(tmp_path, field_file, capsys):
    out = tmp_path / "t.ndjson"
    fg = tmp_path / "t.html"
    runlog = tmp_path / "runs.ndjson"
    assert main(["trace", str(field_file), "--out", str(out),
                 "--flamegraph", str(fg), "--runlog", str(runlog)]) == 0
    printed = capsys.readouterr().out
    assert "flamegraph" in printed and "run " in printed
    html = fg.read_text()
    assert html.startswith("<!DOCTYPE html>") and "var DATA =" in html
    import json
    records = [json.loads(line)
               for line in runlog.read_text().splitlines()]
    assert len(records) == 1 and records[0]["record"] == "dpz-run"
    # Quality telemetry is on during traced CLI runs.
    assert records[0]["quality"]["psnr_db"] > 0
    assert "metrics" in records[0]


def test_trace_diff_mode(tmp_path, field_file, capsys):
    a, b = tmp_path / "a.ndjson", tmp_path / "b.ndjson"
    for path in (a, b):
        assert main(["trace", str(field_file), "--out", str(path),
                     "--no-runlog"]) == 0
    capsys.readouterr()
    assert main(["trace", "--diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "dpz.pca" in out and "total" in out


def test_trace_diff_bad_file_one_line_error(tmp_path, capsys):
    bad = tmp_path / "bad.ndjson"
    bad.write_text('{"event": "nope"}\n')
    assert main(["trace", "--diff", str(bad), str(bad)]) == 2
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err and "error" in captured.err


def test_runs_cli_cycle(tmp_path, field_file, capsys):
    runlog = tmp_path / "runs.ndjson"
    for nines in ("4", "5"):
        assert main(["trace", str(field_file), "--nines", nines,
                     "--out", str(tmp_path / f"t{nines}.ndjson"),
                     "--runlog", str(runlog)]) == 0
    capsys.readouterr()

    assert main(["runs", "list", "--file", str(runlog)]) == 0
    listing = capsys.readouterr().out
    assert listing.count("\n") >= 2 and "run_id" in listing

    assert main(["runs", "show", "0", "--file", str(runlog)]) == 0
    import json
    shown = json.loads(capsys.readouterr().out)
    assert shown["record"] == "dpz-run"

    assert main(["runs", "diff", "0", "1", "--file", str(runlog)]) == 0
    diff = capsys.readouterr().out
    assert "config differs" in diff and "cr" in diff


def test_runs_missing_registry_one_line_error(tmp_path, capsys):
    assert main(["runs", "list", "--file",
                 str(tmp_path / "absent.ndjson")]) == 2
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err
    assert "no run registry" in captured.err


def test_runs_unknown_key_one_line_error(tmp_path, field_file, capsys):
    runlog = tmp_path / "runs.ndjson"
    assert main(["trace", str(field_file), "--out",
                 str(tmp_path / "t.ndjson"),
                 "--runlog", str(runlog)]) == 0
    capsys.readouterr()
    assert main(["runs", "show", "zzzz", "--file", str(runlog)]) == 2
    assert "no run matches" in capsys.readouterr().err


def _write_runlog(path, run_ids):
    import json

    with open(path, "w") as fh:
        for i, rid in enumerate(run_ids):
            fh.write(json.dumps({
                "record": "dpz-run", "version": 1, "run_id": rid,
                "time_utc": f"2026-01-0{i + 1}T00:00:00Z",
                "dataset": "t", "shape": [4, 4], "dtype": "float32",
                "config_digest": "d", "config": {"p": 1e-3},
                "original_nbytes": 64, "compressed_nbytes": 16,
                "cr": 4.0, "wall_s": 0.1, "metrics": {},
            }) + "\n")


def test_runs_unknown_key_lists_nearest_ids(tmp_path, capsys):
    runlog = tmp_path / "runs.ndjson"
    _write_runlog(runlog, ["abc111222333", "def444555666"])
    assert main(["runs", "show", "abd1", "--file", str(runlog)]) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1 and "Traceback" not in err
    assert "no run matches" in err
    assert "nearest:" in err and "abc111222333" in err


def test_runs_ambiguous_prefix_lists_matching_ids(tmp_path, capsys):
    runlog = tmp_path / "runs.ndjson"
    _write_runlog(runlog, ["abc111222333", "abc999888777"])
    assert main(["runs", "diff", "abc", "0", "--file", str(runlog)]) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1 and "Traceback" not in err
    assert "ambiguous" in err
    assert "abc111222333" in err and "abc999888777" in err


def test_top_once_renders_panels(capsys):
    assert main(["top", "--once"]) == 0
    out = capsys.readouterr().out
    for panel in ("dpz top", "throughput", "cache", "latency", "pool"):
        assert panel in out
    assert "\x1b[" not in out  # --once never clears the screen


def test_top_polls_a_telemetry_endpoint(capsys):
    from repro.observability import get_registry
    from repro.observability.server import start_server

    get_registry().clear()
    get_registry().counter("store.chunks.compressed").add(42)
    with start_server(0) as srv:
        assert main(["top", "--once", "--url", srv.url]) == 0
    out = capsys.readouterr().out
    assert "chunks compressed" in out and "42" in out
    get_registry().clear()


def test_top_iterations_refresh_with_rates(capsys):
    assert main(["top", "--iterations", "2", "--interval", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "\x1b[H" in out  # looped frames repaint the screen
    assert "frame 2" in out


def test_top_unreachable_url_one_line_error(capsys):
    assert main(["top", "--once", "--url",
                 "http://127.0.0.1:1/"]) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1 and "Traceback" not in err
    assert "cannot fetch" in err


def test_top_listen_serves_while_rendering(capsys):
    import json as _json
    import urllib.request

    from repro.observability.server import start_server

    # Occupying a known free port first proves --listen binds its own.
    probe = start_server(0)
    port = probe.port
    probe.close()
    assert main(["top", "--once", "--listen", str(port)]) == 0
    # The dashboard server is closed again on exit.
    with pytest.raises(urllib.error.URLError):
        urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz",
                               timeout=0.5)
    _ = _json  # parsed responses covered by the server contract tests


def test_trace_profile_writes_sampled_flamegraph(tmp_path, field_file,
                                                 capsys):
    prof = tmp_path / "prof.html"
    assert main(["trace", str(field_file),
                 "--out", str(tmp_path / "t.ndjson"),
                 "--no-runlog",
                 "--profile", str(prof),
                 "--profile-interval", "0.001"]) == 0
    out = capsys.readouterr().out
    assert "profile (" in out and "samples" in out
    assert prof.stat().st_size > 0
    assert "<html" in prof.read_text()[:200].lower() or \
        "<!doctype" in prof.read_text()[:200].lower()


def test_metrics_port_env_serves_any_command(monkeypatch, capsys):
    import json as _json
    import urllib.request

    # Trampoline: grab the URL from stderr mid-command is racy, so use
    # a fixed ephemeral-range port that the probe trick reserves.
    from repro.observability.server import start_server

    probe = start_server(0)
    port = probe.port
    probe.close()
    monkeypatch.setenv("DPZ_METRICS_PORT", str(port))
    assert main(["datasets"]) == 0
    captured = capsys.readouterr()
    assert f"serving telemetry on http://127.0.0.1:{port}" in captured.err
    # Server is torn down with the command.
    with pytest.raises(urllib.error.URLError):
        urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz",
                               timeout=0.5)
    _ = _json


def test_metrics_port_env_malformed_one_line_error(monkeypatch, capsys):
    monkeypatch.setenv("DPZ_METRICS_PORT", "lots")
    assert main(["datasets"]) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1 and "Traceback" not in err
    assert "DPZ_METRICS_PORT" in err
