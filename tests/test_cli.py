"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets.io import load_field, save_field


@pytest.fixture
def field_file(tmp_path, smooth_2d):
    path = tmp_path / "field.npy"
    save_field(path, smooth_2d)
    return path


def test_parser_subcommands():
    parser = build_parser()
    for cmd in ("compress", "decompress", "probe", "info", "datasets"):
        args = ["compress", "a", "b"] if cmd == "compress" else \
            {"decompress": ["decompress", "a", "b"],
             "probe": ["probe", "a"],
             "info": ["info", "a"],
             "datasets": ["datasets"]}[cmd]
        assert parser.parse_args(args).command == cmd


def test_compress_decompress_cycle(tmp_path, field_file, smooth_2d, capsys):
    comp = tmp_path / "out.dpz"
    back = tmp_path / "back.npy"
    assert main(["compress", str(field_file), str(comp),
                 "--scheme", "s", "--nines", "5", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "CR" in out and "stage1&2" in out
    assert main(["decompress", str(comp), str(back)]) == 0
    recon = load_field(back)
    assert recon.shape == smooth_2d.shape


def test_compress_raw_f32_with_shape(tmp_path, smooth_2d):
    raw = tmp_path / "f.f32"
    smooth_2d.astype("<f4").tofile(raw)
    comp = tmp_path / "f.dpz"
    h, w = smooth_2d.shape
    assert main(["compress", str(raw), str(comp),
                 "--shape", str(h), str(w)]) == 0
    assert comp.stat().st_size > 0


def test_knee_flag(tmp_path, field_file):
    comp = tmp_path / "k.dpz"
    assert main(["compress", str(field_file), str(comp), "--knee"]) == 0


def test_probe_command(field_file, capsys):
    assert main(["probe", str(field_file), "--nines", "4"]) == 0
    out = capsys.readouterr().out
    assert "estimated k" in out and "preliminary CR" in out


def test_info_command(tmp_path, field_file, capsys):
    comp = tmp_path / "x.dpz"
    main(["compress", str(field_file), str(comp)])
    capsys.readouterr()
    assert main(["info", str(comp)]) == 0
    out = capsys.readouterr().out
    assert "components" in out and "quantizer" in out


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "Isotropic" in out and "HACC-vx" in out


def test_sampling_flag(tmp_path, field_file):
    comp = tmp_path / "s.dpz"
    assert main(["compress", str(field_file), str(comp),
                 "--sampling", "--nines", "4"]) == 0


def test_trace_command_to_file(tmp_path, field_file, capsys):
    import json

    out = tmp_path / "trace.ndjson"
    assert main(["trace", str(field_file), "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "spans ->" in printed and "dpz.pca" in printed
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert lines[0]["event"] == "meta"
    assert lines[0]["dataset"] == str(field_file)
    names = {rec["name"] for rec in lines if rec["event"] == "span"}
    # Both directions of the pipeline appear in one trace.
    assert "dpz.pca" in names and "dpz.serialize" in names
    assert "dpz.deserialize" in names and "dpz.reassemble" in names


def test_trace_command_registry_dataset_stdout(capsys):
    import json

    assert main(["trace", "CLDLOW", "--size", "small"]) == 0
    lines = [json.loads(line)
             for line in capsys.readouterr().out.splitlines()]
    meta = lines[0]
    assert meta["event"] == "meta" and meta["dataset"] == "CLDLOW"
    assert meta["cr"] > 1.0
    assert any(rec["event"] == "span" for rec in lines)


def test_trace_command_parser():
    parser = build_parser()
    args = parser.parse_args(["trace", "Isotropic", "--scheme", "s",
                              "--nines", "5", "--out", "t.ndjson"])
    assert args.command == "trace" and args.scheme == "s"
