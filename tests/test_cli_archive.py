"""CLI tests for the archive subcommands (pack / unpack / list) and
the bench subcommand."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.io import load_field, save_field


@pytest.fixture
def two_fields(tmp_path, smooth_2d, rough_1d):
    a = tmp_path / "a.npy"
    b = tmp_path / "b.npy"
    save_field(a, smooth_2d)
    save_field(b, rough_1d)
    return a, b


def test_pack_list_unpack_cycle(tmp_path, two_fields, smooth_2d, capsys):
    a, b = two_fields
    out = tmp_path / "bundle.dpza"
    assert main(["pack", str(out), f"smooth={a}", f"rough={b}",
                 "--codec", "dpz", "--scheme", "s", "--nines", "5"]) == 0
    assert out.exists()
    capsys.readouterr()

    assert main(["list", str(out)]) == 0
    listing = capsys.readouterr().out
    assert "smooth" in listing and "rough" in listing and "total CR" in \
        listing

    back = tmp_path / "smooth_back.npy"
    assert main(["unpack", str(out), "smooth", str(back)]) == 0
    recon = load_field(back)
    assert recon.shape == smooth_2d.shape


def test_pack_sz_codec(tmp_path, two_fields):
    a, _ = two_fields
    out = tmp_path / "sz.dpza"
    assert main(["pack", str(out), f"f={a}", "--codec", "sz",
                 "--rel-eps", "1e-3"]) == 0
    assert out.stat().st_size > 0


def test_pack_raw_codec_lossless(tmp_path, two_fields, smooth_2d):
    a, _ = two_fields
    out = tmp_path / "raw.dpza"
    back = tmp_path / "back.npy"
    main(["pack", str(out), f"f={a}", "--codec", "raw"])
    main(["unpack", str(out), "f", str(back)])
    np.testing.assert_array_equal(load_field(back), smooth_2d)


def test_pack_bad_spec_rejected(tmp_path, two_fields):
    a, _ = two_fields
    with pytest.raises(SystemExit):
        main(["pack", str(tmp_path / "x.dpza"), str(a)])


def test_bench_subcommand(capsys):
    assert main(["bench", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Isotropic" in out
