"""CLI tests for the chunked-store subcommands (dpz store ...)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.io import load_field, save_field


@pytest.fixture
def field_file(tmp_path, tiny_3d):
    path = tmp_path / "field.npy"
    save_field(path, tiny_3d)
    return path


def test_pack_list_get_cycle(tmp_path, field_file, tiny_3d, capsys):
    out = tmp_path / "s.dpzs"
    assert main(["store", "pack", str(out), f"f={field_file}",
                 "--codec", "raw", "--chunk", "8"]) == 0
    assert "packed 1 fields" in capsys.readouterr().out

    assert main(["store", "list", str(out)]) == 0
    listing = capsys.readouterr().out
    assert "f" in listing and "raw" in listing and "total CR" in listing

    back = tmp_path / "back.npy"
    assert main(["store", "get", str(out), "f", str(back)]) == 0
    np.testing.assert_array_equal(load_field(back), tiny_3d)


def test_region_read(tmp_path, field_file, tiny_3d, capsys):
    out = tmp_path / "s.dpzs"
    main(["store", "pack", str(out), f"f={field_file}",
          "--codec", "raw", "--chunk", "8", "8", "8"])
    capsys.readouterr()
    back = tmp_path / "sub.npy"
    assert main(["store", "region", str(out), "f", "0:8,4:12,3",
                 str(back)]) == 0
    sub = load_field(back)
    np.testing.assert_array_equal(sub, tiny_3d[0:8, 4:12, 3])


def test_pack_auto_with_budget(tmp_path, field_file, capsys):
    out = tmp_path / "s.dpzs"
    assert main(["store", "pack", str(out), f"f={field_file}",
                 "--codec", "auto", "--budget", "1e-3",
                 "--chunk", "8"]) == 0
    capsys.readouterr()
    assert main(["store", "list", str(out)]) == 0
    assert "auto" in capsys.readouterr().out


def test_pack_sz_codec(tmp_path, field_file):
    out = tmp_path / "s.dpzs"
    assert main(["store", "pack", str(out), f"f={field_file}",
                 "--codec", "sz", "--rel-eps", "1e-3",
                 "--chunk", "8", "--jobs", "2"]) == 0
    assert out.stat().st_size > 0


def test_from_archive(tmp_path, field_file, tiny_3d, capsys):
    archive = tmp_path / "x.dpza"
    assert main(["pack", str(archive), f"f={field_file}",
                 "--codec", "raw"]) == 0
    capsys.readouterr()
    out = tmp_path / "x.dpzs"
    assert main(["store", "from-archive", str(archive), str(out),
                 "--chunk", "8"]) == 0
    assert "re-packed 1 fields" in capsys.readouterr().out
    back = tmp_path / "back.npy"
    main(["store", "get", str(out), "f", str(back)])
    np.testing.assert_array_equal(load_field(back), tiny_3d)


def test_errors_are_one_line_exit_2(tmp_path, field_file, capsys):
    out = tmp_path / "s.dpzs"
    # auto without a budget
    assert main(["store", "pack", str(out), f"f={field_file}",
                 "--codec", "auto"]) == 2
    assert "error_budget" in capsys.readouterr().err
    # malformed field spec
    assert main(["store", "pack", str(out), str(field_file)]) == 2
    assert "NAME=FILE" in capsys.readouterr().err
    # bad region selector
    main(["store", "pack", str(out), f"f={field_file}", "--codec",
          "raw", "--chunk", "8"])
    capsys.readouterr()
    assert main(["store", "region", str(out), "f", "0:8:2,0,0",
                 str(tmp_path / "x.npy")]) == 2
    assert "selector" in capsys.readouterr().err
    # missing field
    assert main(["store", "get", str(out), "nope",
                 str(tmp_path / "x.npy")]) == 2
    assert "no field" in capsys.readouterr().err
