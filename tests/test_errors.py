"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    CodecError,
    ConfigError,
    DataShapeError,
    FormatError,
    ReproError,
)


@pytest.mark.parametrize("exc", [CodecError, FormatError, ConfigError,
                                 DataShapeError])
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("x")


def test_base_derives_from_exception():
    assert issubclass(ReproError, Exception)


def test_catching_base_catches_library_failures():
    """A caller can wrap any repro call in one except clause."""
    import numpy as np

    from repro.baselines.sz import sz_compress

    with pytest.raises(ReproError):
        sz_compress(np.zeros(0, dtype=np.float32), eps=1e-3)
