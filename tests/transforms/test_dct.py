"""Tests for the orthonormal DCT-II/III transforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DataShapeError
from repro.transforms.dct import dct1d, dct2d, dct_matrix, idct1d, idct2d


class TestDCTMatrix:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 17, 64])
    def test_orthonormality(self, n):
        mat = dct_matrix(n)
        np.testing.assert_allclose(mat @ mat.T, np.eye(n), atol=1e-12)

    def test_dc_row_is_constant(self):
        mat = dct_matrix(16)
        np.testing.assert_allclose(mat[0], np.full(16, 1 / 4.0), atol=1e-12)

    def test_invalid_size_raises(self):
        with pytest.raises(DataShapeError):
            dct_matrix(0)

    def test_cache_returns_same_object(self):
        assert dct_matrix(12) is dct_matrix(12)


class TestDCT1D:
    def test_matches_scipy_on_both_paths(self, rng):
        x = rng.normal(size=50)
        np.testing.assert_allclose(
            dct1d(x, method="matrix"), dct1d(x, method="fft"), atol=1e-10
        )

    def test_roundtrip(self, rng):
        x = rng.normal(size=(7, 33))
        np.testing.assert_allclose(idct1d(dct1d(x)), x, atol=1e-10)

    def test_roundtrip_matrix_path(self, rng):
        x = rng.normal(size=31)
        np.testing.assert_allclose(
            idct1d(dct1d(x, method="matrix"), method="matrix"), x, atol=1e-10
        )

    def test_energy_preservation(self, rng):
        x = rng.normal(size=1000)
        assert np.isclose(np.linalg.norm(dct1d(x)), np.linalg.norm(x))

    def test_axis_argument(self, rng):
        x = rng.normal(size=(5, 8, 13))
        for axis in range(3):
            z = dct1d(x, axis=axis)
            np.testing.assert_allclose(idct1d(z, axis=axis), x, atol=1e-10)

    def test_constant_signal_concentrates_in_dc(self):
        z = dct1d(np.full(64, 3.0))
        assert np.isclose(z[0], 3.0 * 8.0)  # 3 * sqrt(64)
        np.testing.assert_allclose(z[1:], 0.0, atol=1e-12)

    def test_energy_compaction_on_smooth_signal(self):
        x = np.sin(np.linspace(0, 2 * np.pi, 256))
        z = dct1d(x)
        energy = np.sort(z ** 2)[::-1]
        assert energy[:4].sum() / energy.sum() > 0.99

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            dct1d(np.ones(4), method="dst")


class TestDCT2D:
    def test_roundtrip(self, rng):
        x = rng.normal(size=(24, 36))
        np.testing.assert_allclose(idct2d(dct2d(x)), x, atol=1e-10)

    def test_separability_matches_matrix_form(self, rng):
        x = rng.normal(size=(8, 8))
        a = dct_matrix(8)
        np.testing.assert_allclose(dct2d(x, method="matrix"),
                                   a @ x @ a.T, atol=1e-10)

    def test_rejects_non_2d(self):
        with pytest.raises(DataShapeError):
            dct2d(np.ones(8))
        with pytest.raises(DataShapeError):
            idct2d(np.ones((2, 2, 2)))


@given(st.integers(2, 64), st.integers(0, 2 ** 32))
def test_roundtrip_property(n, seed):
    x = np.random.default_rng(seed).normal(size=n)
    np.testing.assert_allclose(idct1d(dct1d(x)), x, atol=1e-9)
    assert np.isclose(np.linalg.norm(dct1d(x)), np.linalg.norm(x),
                      rtol=1e-9)
