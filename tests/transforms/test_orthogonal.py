"""Tests for the orthogonality/energy helpers."""

from __future__ import annotations

import numpy as np

from repro.transforms.dct import dct_matrix
from repro.transforms.orthogonal import energy, energy_ratio, is_orthogonal


def test_identity_is_orthogonal():
    assert is_orthogonal(np.eye(5))


def test_dct_matrix_is_orthogonal():
    assert is_orthogonal(dct_matrix(32))


def test_partial_isometry_accepted():
    assert is_orthogonal(dct_matrix(16)[:5])


def test_scaled_matrix_rejected():
    assert not is_orthogonal(2.0 * np.eye(3))


def test_non_2d_rejected():
    assert not is_orthogonal(np.ones(4))


def test_energy_is_sum_of_squares(rng):
    x = rng.normal(size=(4, 5))
    assert np.isclose(energy(x), np.sum(x ** 2))


def test_energy_ratio_of_orthogonal_map(rng):
    x = rng.normal(size=16)
    z = dct_matrix(16) @ x
    assert np.isclose(energy_ratio(z, x), 1.0)


def test_energy_ratio_zero_input():
    assert energy_ratio(np.zeros(3), np.zeros(3)) == 1.0
    assert energy_ratio(np.ones(3), np.zeros(3)) == np.inf
