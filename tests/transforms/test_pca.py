"""Tests for the from-scratch PCA implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, DataShapeError
from repro.transforms.pca import PCA


def low_rank_data(rng, n=200, f=20, rank=3, noise=0.0):
    basis = rng.normal(size=(rank, f))
    weights = 10.0 * np.power(0.5, np.arange(rank))
    coeffs = rng.normal(size=(n, rank)) * weights
    data = coeffs @ basis
    if noise:
        data = data + noise * rng.normal(size=data.shape)
    return data


class TestFit:
    def test_components_are_orthonormal(self, rng):
        X = rng.normal(size=(100, 12))
        pca = PCA().fit(X)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(12), atol=1e-9)

    def test_eigenvalues_descending(self, rng):
        pca = PCA().fit(rng.normal(size=(80, 15)))
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-12)

    def test_low_rank_detected(self, rng):
        X = low_rank_data(rng, rank=3)
        pca = PCA().fit(X)
        assert pca.tve_curve()[2] > 1.0 - 1e-9

    def test_cov_and_svd_solvers_agree(self, rng):
        X = low_rank_data(rng, rank=5, noise=0.1)
        ev_cov = PCA(solver="cov").fit(X).explained_variance_
        ev_svd = PCA(solver="svd").fit(X).explained_variance_
        np.testing.assert_allclose(ev_cov[:5], ev_svd[:5], rtol=1e-8)

    def test_eigsh_matches_dense_leading_components(self, rng):
        X = low_rank_data(rng, f=30, rank=6, noise=0.05)
        dense = PCA().fit(X)
        trunc = PCA(n_components=4, solver="eigsh").fit(X)
        np.testing.assert_allclose(
            trunc.explained_variance_, dense.explained_variance_[:4],
            rtol=1e-6,
        )

    def test_eigsh_requires_n_components(self):
        with pytest.raises(ConfigError):
            PCA(solver="eigsh")

    def test_eigsh_near_full_rank_falls_back(self, rng):
        X = rng.normal(size=(50, 6))
        pca = PCA(n_components=6, solver="eigsh").fit(X)
        assert pca.components_.shape == (6, 6)

    def test_total_variance_matches_trace(self, rng):
        X = rng.normal(size=(60, 10))
        pca = PCA().fit(X)
        expected = np.trace(np.cov(X.T))
        assert np.isclose(pca.total_variance_, expected, rtol=1e-9)

    def test_sign_convention_deterministic(self, rng):
        X = low_rank_data(rng, rank=2)
        c1 = PCA().fit(X).components_
        c2 = PCA().fit(X.copy()).components_
        np.testing.assert_allclose(c1, c2)

    def test_rejects_1d(self, rng):
        with pytest.raises(DataShapeError):
            PCA().fit(rng.normal(size=10))

    def test_rejects_single_sample(self):
        with pytest.raises(DataShapeError):
            PCA().fit(np.ones((1, 4)))

    def test_invalid_solver_rejected(self):
        with pytest.raises(ConfigError):
            PCA(solver="qr")

    def test_invalid_n_components_rejected(self):
        with pytest.raises(ConfigError):
            PCA(n_components=0)


class TestTransform:
    def test_full_rank_reconstruction_exact(self, rng):
        X = rng.normal(size=(50, 8))
        pca = PCA().fit(X)
        np.testing.assert_allclose(
            pca.inverse_transform(pca.transform(X)), X, atol=1e-9
        )

    def test_truncated_reconstruction_error_matches_discarded_variance(
            self, rng):
        X = low_rank_data(rng, n=400, f=16, rank=8, noise=0.0)
        pca = PCA().fit(X)
        k = 4
        recon = pca.inverse_transform(pca.transform(X, k=k))
        mse = np.mean((X - recon) ** 2)
        discarded = pca.explained_variance_[k:].sum() * (399 / 400)
        assert np.isclose(mse * X.shape[1], discarded, rtol=1e-6)

    def test_unfitted_transform_raises(self, rng):
        with pytest.raises(ConfigError):
            PCA().transform(rng.normal(size=(4, 4)))

    def test_too_many_score_columns_rejected(self, rng):
        X = rng.normal(size=(30, 5))
        pca = PCA(n_components=3).fit(X)
        with pytest.raises(DataShapeError):
            pca.inverse_transform(rng.normal(size=(30, 4)))

    def test_fit_transform_equals_fit_then_transform(self, rng):
        X = rng.normal(size=(40, 6))
        a = PCA().fit_transform(X)
        b = PCA().fit(X).transform(X)
        np.testing.assert_allclose(a, b)


class TestStandardizeAndCenter:
    def test_standardize_roundtrip(self, rng):
        X = rng.normal(size=(60, 7)) * np.array([1, 10, 100, 1, 5, 50, 2.0])
        pca = PCA(standardize=True).fit(X)
        np.testing.assert_allclose(
            pca.inverse_transform(pca.transform(X)), X, atol=1e-8
        )

    def test_standardize_changes_leading_direction(self, rng):
        X = rng.normal(size=(200, 3)) * np.array([100.0, 1.0, 1.0])
        plain = PCA().fit(X)
        scaled = PCA(standardize=True).fit(X)
        # Unscaled PCA locks onto the big-variance axis; scaled must not.
        assert abs(plain.components_[0, 0]) > 0.99
        assert abs(scaled.components_[0, 0]) < 0.99

    def test_uncentered_mean_is_zero(self, rng):
        X = rng.normal(size=(50, 4)) + 5.0
        pca = PCA(center=False).fit(X)
        np.testing.assert_array_equal(pca.mean_, np.zeros(4))

    def test_uncentered_roundtrip(self, rng):
        X = rng.normal(size=(50, 6)) + 3.0
        pca = PCA(center=False).fit(X)
        np.testing.assert_allclose(
            pca.inverse_transform(pca.transform(X)), X, atol=1e-9
        )

    def test_uncentered_first_component_captures_mean_offset(self, rng):
        X = rng.normal(size=(300, 5)) * 0.01 + 7.0
        pca = PCA(center=False).fit(X)
        # Second-moment PCA: the dominant direction is the all-ones
        # mean direction.
        direction = pca.components_[0]
        np.testing.assert_allclose(np.abs(direction),
                                   np.full(5, 1 / np.sqrt(5)), atol=0.01)


class TestTVE:
    def test_curve_monotone_and_bounded(self, rng):
        pca = PCA().fit(rng.normal(size=(80, 12)))
        curve = pca.tve_curve()
        assert np.all(np.diff(curve) >= -1e-12)
        assert np.isclose(curve[-1], 1.0, atol=1e-9)

    def test_components_for_tve(self, rng):
        X = low_rank_data(rng, rank=3, noise=1e-4)
        pca = PCA().fit(X)
        assert pca.components_for_tve(0.99) <= 3

    def test_components_for_tve_invalid(self, rng):
        pca = PCA().fit(rng.normal(size=(20, 4)))
        with pytest.raises(ConfigError):
            pca.components_for_tve(0.0)
        with pytest.raises(ConfigError):
            pca.components_for_tve(1.5)

    def test_threshold_never_reached_returns_all(self, rng):
        X = rng.normal(size=(100, 10))
        pca = PCA(n_components=3).fit(X)
        assert pca.components_for_tve(0.9999999) == 3
