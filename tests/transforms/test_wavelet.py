"""Tests for the lifting-scheme wavelets (Haar, CDF 5/3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DataShapeError
from repro.transforms.wavelet import (
    cdf53_forward,
    cdf53_inverse,
    haar_forward,
    haar_inverse,
    multilevel_forward,
    multilevel_inverse,
)


class TestHaar:
    def test_even_roundtrip(self, rng):
        x = rng.normal(size=64)
        a, d = haar_forward(x)
        np.testing.assert_allclose(haar_inverse(a, d), x, atol=1e-12)

    def test_odd_roundtrip(self, rng):
        x = rng.normal(size=65)
        a, d = haar_forward(x)
        assert a.shape[-1] == 33 and d.shape[-1] == 32
        np.testing.assert_allclose(haar_inverse(a, d), x, atol=1e-12)

    def test_batch_axes(self, rng):
        x = rng.normal(size=(5, 40))
        a, d = haar_forward(x)
        np.testing.assert_allclose(haar_inverse(a, d), x, atol=1e-12)

    def test_energy_preservation(self, rng):
        x = rng.normal(size=128)
        a, d = haar_forward(x)
        assert np.isclose(np.sum(a ** 2) + np.sum(d ** 2), np.sum(x ** 2))

    def test_constant_signal_has_zero_detail(self):
        a, d = haar_forward(np.full(32, 5.0))
        np.testing.assert_allclose(d, 0.0, atol=1e-12)

    def test_empty_rejected(self):
        with pytest.raises(DataShapeError):
            haar_forward(np.zeros(0))

    def test_inconsistent_bands_rejected(self):
        with pytest.raises(DataShapeError):
            haar_inverse(np.zeros(4), np.zeros(2))


class TestCDF53:
    def test_even_roundtrip(self, rng):
        x = rng.normal(size=64)
        a, d = cdf53_forward(x)
        np.testing.assert_allclose(cdf53_inverse(a, d), x, atol=1e-12)

    def test_odd_roundtrip(self, rng):
        x = rng.normal(size=51)
        a, d = cdf53_forward(x)
        np.testing.assert_allclose(cdf53_inverse(a, d), x, atol=1e-12)

    def test_linear_ramp_has_tiny_detail(self):
        # CDF 5/3 annihilates degree-1 polynomials away from boundaries.
        x = np.linspace(0, 100, 64)
        _, d = cdf53_forward(x)
        assert np.max(np.abs(d[1:-1])) < 1e-9

    def test_too_short_rejected(self):
        with pytest.raises(DataShapeError):
            cdf53_forward(np.zeros(1))

    def test_batch_roundtrip(self, rng):
        x = rng.normal(size=(3, 4, 30))
        a, d = cdf53_forward(x)
        np.testing.assert_allclose(cdf53_inverse(a, d), x, atol=1e-12)


class TestMultilevel:
    @pytest.mark.parametrize("wavelet", ["haar", "cdf53"])
    def test_roundtrip(self, wavelet, rng):
        x = rng.normal(size=96)
        bands = multilevel_forward(x, levels=4, wavelet=wavelet)
        assert len(bands) == 5
        np.testing.assert_allclose(
            multilevel_inverse(bands, wavelet=wavelet), x, atol=1e-10
        )

    def test_level_clipping(self, rng):
        x = rng.normal(size=8)
        bands = multilevel_forward(x, levels=10, wavelet="haar")
        # 8 -> 4 -> 2: at most 2 levels before the band is length 2.
        assert len(bands) <= 4
        np.testing.assert_allclose(multilevel_inverse(bands), x, atol=1e-10)


@given(st.integers(2, 200), st.integers(0, 2 ** 32),
       st.sampled_from(["haar", "cdf53"]))
def test_roundtrip_property(n, seed, wavelet):
    x = np.random.default_rng(seed).normal(size=n)
    fwd = haar_forward if wavelet == "haar" else cdf53_forward
    inv = haar_inverse if wavelet == "haar" else cdf53_inverse
    a, d = fwd(x)
    np.testing.assert_allclose(inv(a, d), x, atol=1e-10)
